package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/workload"
)

// cpuBenchRow is one end-to-end row of BENCH_cpu.json: breadth-first CPU
// makespan for one algorithm/size under the three executors the PR compares
// — the old channel fan-out pool (Config.LegacyPool), the work-stealing
// engine, and the engine with automatic leaf coarsening
// (WithGrain(GrainAuto)). On a single-core host these runs are bound by the
// algorithm's own compute (for mergesort 1M the merge kernel is >90% of the
// profile), so the executor deltas here are small; the dispatch section
// below isolates the scheduling term the engine actually optimizes.
type cpuBenchRow struct {
	Alg             string  `json:"alg"`
	Size            int     `json:"size"`
	LegacySeconds   float64 `json:"legacy_pool_seconds"`
	EngineSeconds   float64 `json:"engine_seconds"`
	GrainSeconds    float64 `json:"engine_grain_seconds"`
	LegacyNsPerElem float64 `json:"legacy_pool_ns_per_elem"`
	EngineNsPerElem float64 `json:"engine_ns_per_elem"`
	GrainNsPerElem  float64 `json:"engine_grain_ns_per_elem"`
	EngineSpeedup   float64 `json:"engine_speedup"`
	GrainSpeedup    float64 `json:"grain_speedup"`
	Identical       bool    `json:"results_identical"`
}

// dispatchRow is one saturated-submission row of BENCH_cpu.json: several
// goroutines flooding the CPU executor with small batches, the serving
// layer's hot-path pattern. Here the legacy pool's per-chunk closure
// allocations, channel sends, gauge atomics, and full-channel goroutine
// fallback dominate, and the stealing engine's advantage is measured
// directly. The 2x acceptance floor is enforced on these rows.
type dispatchRow struct {
	Submitters          int     `json:"submitters"`
	Batches             int     `json:"batches_per_submitter"`
	Tasks               int     `json:"tasks_per_batch"`
	LegacySubmitsPerSec float64 `json:"legacy_pool_submits_per_sec"`
	EngineSubmitsPerSec float64 `json:"engine_submits_per_sec"`
	LegacyNsPerSubmit   float64 `json:"legacy_pool_ns_per_submit"`
	EngineNsPerSubmit   float64 `json:"engine_ns_per_submit"`
	Speedup             float64 `json:"speedup"`
}

// cpuBenchCase binds an algorithm constructor to a result extractor so every
// timed run can be checked bit-identical against the sequential baseline.
type cpuBenchCase struct {
	name  string
	sizes []int
	build func(data []int32) (hybriddc.Alg, error)
	value func(alg hybriddc.Alg) any
}

func cpuBenchCases() []cpuBenchCase {
	return []cpuBenchCase{
		{
			name:  "mergesort",
			sizes: []int{1 << 16, 1 << 18, 1 << 20},
			build: func(d []int32) (hybriddc.Alg, error) { return hybriddc.NewMergesort(d) },
			value: func(a hybriddc.Alg) any {
				return append([]int32(nil), a.(interface{ Result() []int32 }).Result()...)
			},
		},
		{
			name:  "dcsum",
			sizes: []int{1 << 16, 1 << 18, 1 << 20},
			build: func(d []int32) (hybriddc.Alg, error) { return hybriddc.NewSum(d) },
			value: func(a hybriddc.Alg) any { return a.(interface{ Result() int64 }).Result() },
		},
		{
			name:  "scan",
			sizes: []int{1 << 16, 1 << 18, 1 << 20},
			build: func(d []int32) (hybriddc.Alg, error) { return hybriddc.NewScan(d) },
			value: func(a hybriddc.Alg) any {
				return append([]int64(nil), a.(interface{ Result() []int64 }).Result()...)
			},
		},
	}
}

// runCPUBench measures the breadth-first CPU path under the legacy channel
// pool, the work-stealing engine, and the engine with automatic leaf
// coarsening: end-to-end makespans for mergesort/dcsum/scan at three sizes
// (every run verified bit-identical against the sequential baseline), plus
// the saturated-submission dispatch comparison. The best of `reps`
// wall-clock repetitions is kept per configuration (standard noise
// rejection). Rows go to out as JSON plus benchstat-style delta lines on
// stdout and, when summary is nonempty, markdown tables for the CI job
// summary. It fails (nonzero exit) when any result differs or when the
// engine's saturated-dispatch speedup falls below the 2x acceptance floor.
func runCPUBench(out, summary string, workers, reps int) error {
	modes := []struct {
		name   string
		legacy bool
		opts   []hybriddc.Option
	}{
		{"legacy-pool", true, nil},
		{"engine", false, nil},
		{"engine+grain", false, []hybriddc.Option{hybriddc.WithGrain(hybriddc.GrainAuto)}},
	}

	var rows []cpuBenchRow
	for _, tc := range cpuBenchCases() {
		for _, n := range tc.sizes {
			data := workload.Uniform(n, int64(2000*n+1))

			// Sequential baseline: the bit-identity reference.
			ref, err := tc.build(append([]int32(nil), data...))
			if err != nil {
				return err
			}
			if _, err := hybriddc.RunSequentialCtx(context.Background(), hybriddc.MustSim(hybriddc.HPU1()), ref); err != nil {
				return err
			}
			want := tc.value(ref)

			secs := make([]float64, len(modes))
			identical := true
			for mi, m := range modes {
				be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: workers, LegacyPool: m.legacy})
				if err != nil {
					return err
				}
				best := 0.0
				for r := 0; r < reps; r++ {
					alg, err := tc.build(append([]int32(nil), data...))
					if err != nil {
						be.Close()
						return err
					}
					start := time.Now()
					if _, err := hybriddc.RunBreadthFirstCPUCtx(context.Background(), be, alg, m.opts...); err != nil {
						be.Close()
						return fmt.Errorf("bench-cpu %s n=%d %s: %w", tc.name, n, m.name, err)
					}
					elapsed := time.Since(start).Seconds()
					if best == 0 || elapsed < best {
						best = elapsed
					}
					if !reflect.DeepEqual(tc.value(alg), want) {
						identical = false
					}
				}
				if err := be.Close(); err != nil {
					return err
				}
				secs[mi] = best
			}

			row := cpuBenchRow{
				Alg: tc.name, Size: n,
				LegacySeconds:   secs[0],
				EngineSeconds:   secs[1],
				GrainSeconds:    secs[2],
				LegacyNsPerElem: secs[0] * 1e9 / float64(n),
				EngineNsPerElem: secs[1] * 1e9 / float64(n),
				GrainNsPerElem:  secs[2] * 1e9 / float64(n),
				EngineSpeedup:   secs[0] / secs[1],
				GrainSpeedup:    secs[0] / secs[2],
				Identical:       identical,
			}
			rows = append(rows, row)
			fmt.Printf("%-10s n=%-8d legacy %9.3fms  engine %9.3fms (%+.1f%%)  engine+grain %9.3fms (%+.1f%%)\n",
				tc.name, n, 1e3*secs[0],
				1e3*secs[1], 100*(secs[1]-secs[0])/secs[0],
				1e3*secs[2], 100*(secs[2]-secs[0])/secs[0])

			if !identical {
				return fmt.Errorf("bench-cpu %s n=%d: results differ from sequential baseline", tc.name, n)
			}
		}
	}

	dispatch, err := runDispatchBench(workers, reps)
	if err != nil {
		return err
	}
	for _, d := range dispatch {
		fmt.Printf("dispatch submitters=%-3d batches=%-5d tasks=%-3d legacy %8.0f submits/s  engine %8.0f submits/s  speedup %.2fx\n",
			d.Submitters, d.Batches, d.Tasks, d.LegacySubmitsPerSec, d.EngineSubmitsPerSec, d.Speedup)
		if d.Speedup < 2.0 {
			return fmt.Errorf("bench-cpu dispatch submitters=%d tasks=%d: speedup %.2fx below the 2x acceptance floor",
				d.Submitters, d.Tasks, d.Speedup)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"workers":    workers,
		"end_to_end": rows,
		"dispatch":   dispatch,
	}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)

	if summary != "" {
		if err := writeCPUBenchSummary(summary, workers, rows, dispatch); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", summary)
	}
	return nil
}

// runDispatchBench floods the CPU executor from several goroutines with
// small batches — the serving layer's hot-path pattern — and reports
// submits/sec for the legacy pool vs the stealing engine, best of reps.
func runDispatchBench(workers, reps int) ([]dispatchRow, error) {
	configs := [][3]int{
		{8, 5000, 8},
		{8, 5000, 64},
		{16, 2000, 16},
	}

	runOnce := func(legacy bool, submitters, batches, tasks int) (float64, error) {
		be, err := native.New(native.Config{CPUWorkers: workers, LegacyPool: legacy})
		if err != nil {
			return 0, err
		}
		defer be.Close()
		cpu := be.CPU()
		var sink [256]int64
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				var done sync.WaitGroup
				for b := 0; b < batches; b++ {
					done.Add(1)
					cpu.Submit(core.Batch{Tasks: tasks, Run: func(i int) {
						sink[(s*31+i)%256]++
					}}, done.Done)
				}
				done.Wait()
			}()
		}
		wg.Wait()
		be.Wait()
		return time.Since(start).Seconds(), nil
	}

	var out []dispatchRow
	for _, cfg := range configs {
		submitters, batches, tasks := cfg[0], cfg[1], cfg[2]
		// Warm both executors (worker startup, pools).
		if _, err := runOnce(true, 2, 200, tasks); err != nil {
			return nil, err
		}
		if _, err := runOnce(false, 2, 200, tasks); err != nil {
			return nil, err
		}
		lt, et := 0.0, 0.0
		for r := 0; r < reps; r++ {
			l, err := runOnce(true, submitters, batches, tasks)
			if err != nil {
				return nil, err
			}
			e, err := runOnce(false, submitters, batches, tasks)
			if err != nil {
				return nil, err
			}
			if lt == 0 || l < lt {
				lt = l
			}
			if et == 0 || e < et {
				et = e
			}
		}
		n := float64(submitters * batches)
		out = append(out, dispatchRow{
			Submitters: submitters, Batches: batches, Tasks: tasks,
			LegacySubmitsPerSec: n / lt,
			EngineSubmitsPerSec: n / et,
			LegacyNsPerSubmit:   lt * 1e9 / n,
			EngineNsPerSubmit:   et * 1e9 / n,
			Speedup:             lt / et,
		})
	}
	return out, nil
}

// writeCPUBenchSummary renders the rows as markdown tables suitable for
// appending to $GITHUB_STEP_SUMMARY.
func writeCPUBenchSummary(path string, workers int, rows []cpuBenchRow, dispatch []dispatchRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "### CPU breadth-first executor, end to end (%d workers, best of reps)\n\n", workers)
	fmt.Fprintln(f, "| alg | n | legacy pool | engine | Δ | engine+grain | Δ |")
	fmt.Fprintln(f, "|---|---:|---:|---:|---:|---:|---:|")
	for _, r := range rows {
		fmt.Fprintf(f, "| %s | %d | %.3fms | %.3fms | %+.1f%% | %.3fms | %+.1f%% |\n",
			r.Alg, r.Size,
			1e3*r.LegacySeconds,
			1e3*r.EngineSeconds, 100*(r.EngineSeconds-r.LegacySeconds)/r.LegacySeconds,
			1e3*r.GrainSeconds, 100*(r.GrainSeconds-r.LegacySeconds)/r.LegacySeconds)
	}
	fmt.Fprintf(f, "\n### Saturated dispatch (submits/sec, 2x floor)\n\n")
	fmt.Fprintln(f, "| submitters | batches | tasks | legacy pool | engine | speedup |")
	fmt.Fprintln(f, "|---:|---:|---:|---:|---:|---:|")
	for _, d := range dispatch {
		fmt.Fprintf(f, "| %d | %d | %d | %.0f/s (%.0fns) | %.0f/s (%.0fns) | %.2fx |\n",
			d.Submitters, d.Batches, d.Tasks,
			d.LegacySubmitsPerSec, d.LegacyNsPerSubmit,
			d.EngineSubmitsPerSec, d.EngineNsPerSubmit, d.Speedup)
	}
	return nil
}
