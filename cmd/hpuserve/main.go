// Command hpuserve is a load driver for the concurrent job server: it
// floods one shared backend with a stream of mixed divide-and-conquer jobs
// (mergesort, scan, sum) under random priorities and cancellations, then
// prints the server's aggregate counters.
//
// With --listen it exposes live observability over HTTP while the load
// runs: /metrics (a JSON snapshot of the metrics registry), /debug/vars
// (the standard expvar surface), and /debug/trace (a Chrome trace-event
// download of the most recent spans, loadable in chrome://tracing or
// Perfetto).
//
// With --smoke it runs a short self-checking load test (default 5s) and
// exits nonzero if any job fails, any accounting invariant breaks, or
// goroutines leak. With --obs-smoke it additionally serves the HTTP
// endpoints on a loopback port, scrapes them itself, and exits nonzero
// unless the queue-depth, per-priority latency, and transfer-byte metrics
// advanced under load — the CI entry points wired into the Makefile.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		smoke     = flag.Bool("smoke", false, "run a short self-checking load test and exit nonzero on any anomaly")
		obsSmoke  = flag.Bool("obs-smoke", false, "like --smoke, plus serve the HTTP endpoints on a loopback port, scrape them, and verify the metrics advanced")
		listen    = flag.String("listen", "", "serve /metrics, /debug/vars and /debug/trace on this address while the load runs")
		duration  = flag.Duration("duration", 5*time.Second, "how long to keep submitting load")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "CPU pool size of the shared native backend")
		lanes     = flag.Int("lanes", 64, "device pool size of the shared native backend")
		inflight  = flag.Int("inflight", 8, "max jobs in flight on the backend")
		qdepth    = flag.Int("qdepth", 32, "admission queue depth")
		minLog    = flag.Int("minlog", 10, "log2 of the smallest job input")
		maxLog    = flag.Int("maxlog", 16, "log2 of the largest job input")
		cancelPct = flag.Int("cancel", 15, "percent of jobs to cancel mid-flight")
		seed      = flag.Int64("seed", 1, "PRNG seed for the job mix")

		devices    = flag.Int("devices", 1, "number of native backends in the serving pool")
		drainAfter = flag.Duration("drain-after", 0, "drain the highest-id device out of the pool after this long under load (0 disables; needs --devices >= 2)")

		fuse        = flag.Int("fuse", 0, "fuse up to this many queued same-kind GPU-only jobs into one launch (< 2 disables fusion)")
		batchWindow = flag.Duration("batch-window", 0, "how long a dispatched fusable job waits for companions to arrive")
		fuseBytes   = flag.Int64("fuse-bytes-cap", 0, "cap on a fused group's summed transfer bytes (0 = unbounded)")
		benchFusion = flag.Bool("bench-fusion", false, "benchmark fused vs unfused job throughput on the simulator, write BENCH_serve.json, and exit")
		benchOut    = flag.String("bench-out", "BENCH_serve.json", "output path for --bench-fusion results")

		benchMulti    = flag.Bool("bench-multi", false, "benchmark served throughput across 1/2/4 simulated devices on a GPU-bound job mix, write BENCH_multidev.json, and exit")
		benchMultiOut = flag.String("bench-multi-out", "BENCH_multidev.json", "output path for --bench-multi results")

		chaos          = flag.Bool("chaos", false, "run the seeded fault-injection soak: verify every surviving result, assert the reliability metrics advanced, write a fault report, and exit nonzero on any anomaly")
		chaosJobs      = flag.Int("chaos-jobs", 240, "how many jobs the --chaos soak submits")
		chaosFaultRate = flag.Float64("chaos-fault-rate", 0.2, "per-attempt probability of an injected device fault under --chaos")
		chaosReportOut = flag.String("chaos-report", "CHAOS_report.json", "output path for the --chaos fault report ('' disables)")
		chaosDevices   = flag.Int("chaos-devices", 1, "pool size for the --chaos soak; >= 2 injects faults into the highest-id device only and asserts breaker isolation, auto-drain, and zero healthy-device sheds")

		apiMode    = flag.Bool("api", false, "serve the remote HTTP/JSON job API until SIGTERM (which drains gracefully) instead of generating load")
		apiListen  = flag.String("api-listen", "127.0.0.1:8080", "listen address for --api")
		apiSmoke   = flag.Bool("api-smoke", false, "run the remote-serving self-check: concurrent clients over real TCP, bit-exact results, observed 429 backpressure, /events progress, metrics, and SIGTERM drain; exit nonzero on any anomaly")
		apiClients = flag.Int("api-clients", 64, "concurrent remote clients for --api-smoke")
		apiJobs    = flag.Int("api-jobs", 2, "jobs per client for --api-smoke")

		benchAlloc    = flag.Bool("bench-alloc", false, "profile the serving hot paths with the buffer pool off vs on and the JSON vs binary API round trip at 1M elements, write BENCH_alloc.json, gate regressions, and exit")
		benchAllocOut = flag.String("bench-alloc-out", "BENCH_alloc.json", "output path for --bench-alloc results")

		benchAuto    = flag.Bool("bench-auto", false, "benchmark Strategy Auto vs every fixed strategy across a size sweep on the simulator, write BENCH_auto.json, gate the within-10%-of-best and beats-worst-1.5x floors, and exit")
		benchAutoOut = flag.String("bench-auto-out", "BENCH_auto.json", "output path for --bench-auto results")

		benchCPU        = flag.Bool("bench-cpu", false, "benchmark the breadth-first CPU executor (legacy pool vs stealing engine vs engine+grain), write BENCH_cpu.json, and exit")
		benchCPUOut     = flag.String("bench-cpu-out", "BENCH_cpu.json", "output path for --bench-cpu results")
		benchCPUSummary = flag.String("bench-cpu-summary", "", "also write --bench-cpu results as a markdown table to this path (for CI job summaries)")
		benchCPUReps    = flag.Int("bench-cpu-reps", 5, "wall-clock repetitions per --bench-cpu configuration (best kept)")
	)
	flag.Parse()

	if *apiMode {
		check(runAPI(apiConfig{
			Addr:     *apiListen,
			Workers:  *workers,
			Lanes:    *lanes,
			Devices:  *devices,
			InFlight: *inflight,
			QDepth:   *qdepth,
		}))
		return
	}
	if *apiSmoke {
		// A deliberately small admission window so the client fleet provokes
		// real 429 backpressure.
		check(runAPISmoke(apiConfig{
			Addr:     "127.0.0.1:0",
			Workers:  *workers,
			Lanes:    *lanes,
			Devices:  *devices,
			InFlight: 2,
			QDepth:   4,
		}, *apiClients, *apiJobs, *seed))
		return
	}
	if *benchFusion {
		check(runFusionBench(*benchOut))
		return
	}
	if *benchMulti {
		check(runMultiDeviceBench(*benchMultiOut))
		return
	}
	if *benchAlloc {
		check(runBenchAlloc(*benchAllocOut))
		return
	}
	if *benchAuto {
		check(runAutoBench(*benchAutoOut))
		return
	}
	if *benchCPU {
		check(runCPUBench(*benchCPUOut, *benchCPUSummary, *workers, *benchCPUReps))
		return
	}
	if *chaos {
		check(runChaos(chaosConfig{
			Jobs:      *chaosJobs,
			FaultRate: *chaosFaultRate,
			Seed:      *seed,
			Workers:   *workers,
			Lanes:     *lanes,
			Devices:   *chaosDevices,
		}, *chaosReportOut))
		return
	}

	if (*smoke || *obsSmoke) && *duration > 5*time.Second {
		*duration = 5 * time.Second
	}
	if *minLog < 1 || *maxLog < *minLog {
		check(fmt.Errorf("need 1 <= minlog <= maxlog, got %d..%d", *minLog, *maxLog))
	}
	if *devices < 1 {
		check(fmt.Errorf("need --devices >= 1, got %d", *devices))
	}
	if *drainAfter > 0 && *devices < 2 {
		check(fmt.Errorf("--drain-after needs --devices >= 2"))
	}
	baseline := runtime.NumGoroutine()

	// Observability: one registry and one bounded span recorder feed both
	// the HTTP endpoints and the post-run assertions.
	observing := *listen != "" || *obsSmoke
	var reg *hybriddc.Metrics
	var rec *hybriddc.TraceRecorder
	srvOpts := []hybriddc.ServerOption{
		hybriddc.WithQueueDepth(*qdepth),
		hybriddc.WithMaxInFlight(*inflight),
	}
	if *fuse >= 2 {
		srvOpts = append(srvOpts,
			hybriddc.WithMaxFusedJobs(*fuse),
			hybriddc.WithBatchWindow(*batchWindow),
			hybriddc.WithFusedBytesCap(*fuseBytes))
	}
	if observing {
		reg = hybriddc.NewMetrics()
		rec = hybriddc.NewTraceRecorderLimit(1 << 14)
		srvOpts = append(srvOpts,
			hybriddc.WithServerMetrics(reg),
			hybriddc.WithServerRecorder(rec))
	}

	var httpAddr string
	if observing {
		addr := *listen
		if addr == "" {
			addr = "127.0.0.1:0" // obs-smoke: loopback, kernel-chosen port
		}
		var err error
		httpAddr, err = serveHTTP(addr, reg, rec)
		check(err)
		fmt.Printf("serving http://%s/metrics /debug/vars /debug/trace\n", httpAddr)
	}

	pool := make([]hybriddc.Backend, *devices)
	backends := make([]*hybriddc.Native, *devices)
	for i := range pool {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: *workers, DeviceLanes: *lanes})
		check(err)
		backends[i] = be
		pool[i] = be
	}
	srv, err := hybriddc.NewServerPool(pool, srvOpts...)
	check(err)

	// Arm the mid-load drain: the highest-id device leaves the pool
	// gracefully while submissions continue against the survivors.
	drainDone := make(chan error, 1)
	if *drainAfter > 0 {
		go func() {
			time.Sleep(*drainAfter)
			drainDone <- srv.DrainBackend(context.Background(), *devices-1)
		}()
	}

	rng := rand.New(rand.NewSource(*seed))
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		submitted int
		rejected  int
		completed int
		canceled  int
		failed    int
		firstErr  error
	)

	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		job, err := makeJob(rng, *minLog, *maxLog, *lanes > 0)
		check(err)
		ctx, cancel := context.WithCancel(context.Background())
		h, err := srv.Submit(ctx, job, hybriddc.WithPriority(1+rng.Intn(4)))
		if err != nil {
			cancel()
			if errors.Is(err, hybriddc.ErrQueueFull) {
				mu.Lock()
				rejected++
				mu.Unlock()
				time.Sleep(200 * time.Microsecond) // back off and retry later
				continue
			}
			check(err)
		}
		mu.Lock()
		submitted++
		mu.Unlock()
		doCancel := rng.Intn(100) < *cancelPct
		cancelAfter := time.Duration(rng.Intn(500)) * time.Microsecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			// Composable completion: select over Done instead of parking in
			// Report, so the cancellation timer shares this one goroutine.
			var timer <-chan time.Time
			if doCancel {
				timer = time.After(cancelAfter)
			}
			select {
			case <-h.Done():
			case <-timer:
				cancel()
				<-h.Done()
			}
			err := h.Err() // settled: never blocks
			rep, _ := h.Report()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, hybriddc.ErrCanceled):
				canceled++
				if !rep.Partial {
					failed++
					if firstErr == nil {
						firstErr = fmt.Errorf("job %d: canceled but Report not marked partial", h.ID)
					}
				}
			default:
				failed++
				if firstErr == nil {
					firstErr = err
				}
			}
		}()
	}

	wg.Wait()
	if *drainAfter > 0 {
		check(<-drainDone)
	}
	// Scrape before teardown so gauges still reflect the loaded server.
	var snap snapshot
	if *obsSmoke {
		check(scrape(httpAddr, &snap))
	}
	check(srv.Close())
	for _, be := range backends {
		check(be.Close())
	}
	st := srv.Stats()

	fmt.Printf("submitted %d  rejected(queue-full) %d\n", submitted, rejected)
	fmt.Printf("completed %d  canceled %d  failed %d\n", completed, canceled, failed)
	fmt.Printf("server: submitted %d rejected %d completed %d canceled %d failed %d\n",
		st.Submitted, st.Rejected, st.Completed, st.Canceled, st.Failed)
	fmt.Printf("queue: max depth %d  avg wait %.3fms  busy %.3fs\n",
		st.MaxQueueDepth, 1e3*st.AvgQueueWaitSeconds, st.BusySeconds)
	if *fuse >= 2 {
		fmt.Printf("fusion: %d fused runs covering %d jobs\n", st.FusedRuns, st.FusedJobs)
	}
	if *devices > 1 {
		for _, d := range st.Devices {
			fmt.Printf("device %d: placements %d  trips %d  removed %v\n",
				d.ID, d.Placements, d.BreakerTrips, d.Removed)
		}
		fmt.Printf("pool: rebalanced %d  drains %d\n", st.Rebalanced, st.Drains)
	}

	if !*smoke && !*obsSmoke {
		return
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "smoke: "+format+"\n", args...)
		os.Exit(1)
	}
	// Smoke invariants.
	if firstErr != nil {
		fail("job error: %v", firstErr)
	}
	if completed+canceled != submitted {
		fail("accounting: %d completed + %d canceled != %d submitted", completed, canceled, submitted)
	}
	if st.Completed+st.Canceled+st.Failed != st.Submitted {
		fail("server accounting: %d+%d+%d != %d", st.Completed, st.Canceled, st.Failed, st.Submitted)
	}
	if st.Failed != 0 {
		fail("server reports %d failed jobs", st.Failed)
	}
	if submitted == 0 {
		fail("no jobs submitted")
	}
	if *drainAfter > 0 {
		if !st.Devices[*devices-1].Removed || st.Drains == 0 {
			fail("drained device %d not removed (drains %d)", *devices-1, st.Drains)
		}
	}
	if *obsSmoke {
		assertObserved(fail, snap, st, rec)
	}
	// Give transfer goroutines and pool workers a moment to exit.
	for i := 0; i < 50 && runtime.NumGoroutine() > baseline+3; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	// The HTTP listener goroutine (if any) is still intentionally alive.
	slack := 2
	if observing {
		slack++
	}
	if g := runtime.NumGoroutine(); g > baseline+slack {
		fail("goroutine leak: %d at start, %d after close", baseline, g)
	}
	fmt.Println("smoke: ok")
}

// serveHTTP starts the observability endpoints and returns the bound
// address. The server runs for the remainder of the process lifetime.
func serveHTTP(addr string, reg *hybriddc.Metrics, rec *hybriddc.TraceRecorder) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	reg.PublishExpvar("hybriddc")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		rec.WriteChromeTrace(w)
	})
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

// snapshot mirrors the JSON shape of /metrics for the self-scrape.
type snapshot struct {
	Counters   map[string]uint64  `json:"counters"`
	Gauges     map[string]int64   `json:"gauges"`
	Floats     map[string]float64 `json:"floats"`
	Histograms map[string]struct {
		Count uint64  `json:"count"`
		Sum   float64 `json:"sum"`
	} `json:"histograms"`
}

// scrape fetches /metrics over real HTTP (exercising the full exposition
// path, not the in-process registry) and decodes it. Keep-alives are off so
// the connections' server goroutines don't trip the leak check.
func scrape(addr string, snap *snapshot) error {
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(snap); err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	// The other two endpoints must at least answer.
	for _, path := range []string{"/debug/vars", "/debug/trace"} {
		r, err := client.Get("http://" + addr + path)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", path, r.Status)
		}
	}
	return nil
}

// assertObserved verifies the scraped metrics advanced under load: the
// serving counters match Stats, the admission queue was observed nonempty,
// at least one per-priority latency histogram filled, and bytes crossed the
// link in both directions.
func assertObserved(fail func(string, ...any), snap snapshot, st hybriddc.ServerStats, rec *hybriddc.TraceRecorder) {
	if got := snap.Counters["serve_submitted_total"]; got != st.Submitted {
		fail("scraped serve_submitted_total = %d, server says %d", got, st.Submitted)
	}
	if got := snap.Counters["serve_completed_total"]; got != st.Completed {
		fail("scraped serve_completed_total = %d, server says %d", got, st.Completed)
	}
	if got := snap.Gauges["serve_queue_depth_max"]; got < 1 {
		fail("serve_queue_depth_max = %d: queue-depth metric never advanced", got)
	}
	waits := uint64(0)
	for name, h := range snap.Histograms {
		if strings.HasPrefix(name, "serve_wait_seconds_p") {
			waits += h.Count
		}
	}
	if waits == 0 {
		fail("no serve_wait_seconds_p* observations: per-priority latency histograms never advanced")
	}
	if got := snap.Counters["core_transfer_to_gpu_bytes"]; got == 0 {
		fail("core_transfer_to_gpu_bytes = 0: transfer metrics never advanced")
	}
	if got := snap.Counters["core_transfer_to_cpu_bytes"]; got == 0 {
		fail("core_transfer_to_cpu_bytes = 0: transfer metrics never advanced")
	}
	if rec.Len() == 0 {
		fail("trace recorder captured no spans")
	}
}

// makeJob draws one job from the mixed workload: algorithm, size, and
// strategy. On a backend without device lanes only CPU strategies are drawn.
func makeJob(rng *rand.Rand, minLog, maxLog int, hasGPU bool) (hybriddc.JobSpec, error) {
	n := 1 << (minLog + rng.Intn(maxLog-minLog+1))
	data := workload.Uniform(n, rng.Int63())

	var alg hybriddc.Alg
	var err error
	switch rng.Intn(3) {
	case 0:
		alg, err = hybriddc.NewMergesort(data)
	case 1:
		alg, err = hybriddc.NewScan(data)
	default:
		alg, err = hybriddc.NewSum(data)
	}
	if err != nil {
		return hybriddc.JobSpec{}, err
	}

	job := hybriddc.JobSpec{Alg: alg}
	levels := job.Alg.Levels()
	draws := 5
	if !hasGPU {
		draws = 2
	}
	switch rng.Intn(draws) {
	case 0:
		job.Strategy = hybriddc.JobSequential
	case 1:
		job.Strategy = hybriddc.JobBreadthFirstCPU
	case 2:
		job.Strategy = hybriddc.JobBasicHybrid
		job.Crossover = levels / 3
	case 3:
		job.Strategy = hybriddc.JobAdvancedHybrid
		job.Alpha = 0.25 + rng.Float64()/2
		job.Y = levels / 2
	default:
		job.Strategy = hybriddc.JobGPUOnly
	}
	return job, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpuserve:", err)
		os.Exit(1)
	}
}
