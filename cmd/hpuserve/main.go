// Command hpuserve is a load driver for the concurrent job server: it
// floods one shared backend with a stream of mixed divide-and-conquer jobs
// (mergesort, scan, sum) under random priorities and cancellations, then
// prints the server's aggregate counters.
//
// With --smoke it runs a short self-checking load test (default 5s) and
// exits nonzero if any job fails, any accounting invariant breaks, or
// goroutines leak — the CI entry point wired into the Makefile.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		smoke     = flag.Bool("smoke", false, "run a short self-checking load test and exit nonzero on any anomaly")
		duration  = flag.Duration("duration", 5*time.Second, "how long to keep submitting load")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "CPU pool size of the shared native backend")
		lanes     = flag.Int("lanes", 64, "device pool size of the shared native backend")
		inflight  = flag.Int("inflight", 8, "max jobs in flight on the backend")
		qdepth    = flag.Int("qdepth", 32, "admission queue depth")
		minLog    = flag.Int("minlog", 10, "log2 of the smallest job input")
		maxLog    = flag.Int("maxlog", 16, "log2 of the largest job input")
		cancelPct = flag.Int("cancel", 15, "percent of jobs to cancel mid-flight")
		seed      = flag.Int64("seed", 1, "PRNG seed for the job mix")
	)
	flag.Parse()

	if *smoke && *duration > 5*time.Second {
		*duration = 5 * time.Second
	}
	if *minLog < 1 || *maxLog < *minLog {
		check(fmt.Errorf("need 1 <= minlog <= maxlog, got %d..%d", *minLog, *maxLog))
	}
	baseline := runtime.NumGoroutine()

	be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: *workers, DeviceLanes: *lanes})
	check(err)
	srv, err := hybriddc.NewServer(hybriddc.ServerConfig{
		Backend:     be,
		QueueDepth:  *qdepth,
		MaxInFlight: *inflight,
	})
	check(err)

	rng := rand.New(rand.NewSource(*seed))
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		submitted int
		rejected  int
		completed int
		canceled  int
		failed    int
		firstErr  error
	)

	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		job, err := makeJob(rng, *minLog, *maxLog, *lanes > 0)
		check(err)
		ctx, cancel := context.WithCancel(context.Background())
		h, err := srv.Submit(ctx, job, hybriddc.WithPriority(1+rng.Intn(4)))
		if err != nil {
			cancel()
			if errors.Is(err, hybriddc.ErrQueueFull) {
				mu.Lock()
				rejected++
				mu.Unlock()
				time.Sleep(200 * time.Microsecond) // back off and retry later
				continue
			}
			check(err)
		}
		mu.Lock()
		submitted++
		mu.Unlock()
		doCancel := rng.Intn(100) < *cancelPct
		cancelAfter := time.Duration(rng.Intn(500)) * time.Microsecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cancel()
			if doCancel {
				time.Sleep(cancelAfter)
				cancel()
			}
			rep, err := h.Report()
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
			case errors.Is(err, hybriddc.ErrCanceled):
				canceled++
				if !rep.Partial {
					failed++
					if firstErr == nil {
						firstErr = fmt.Errorf("job %d: canceled but Report not marked partial", h.ID)
					}
				}
			default:
				failed++
				if firstErr == nil {
					firstErr = err
				}
			}
		}()
	}

	wg.Wait()
	check(srv.Close())
	check(be.Close())
	st := srv.Stats()

	fmt.Printf("submitted %d  rejected(queue-full) %d\n", submitted, rejected)
	fmt.Printf("completed %d  canceled %d  failed %d\n", completed, canceled, failed)
	fmt.Printf("server: submitted %d rejected %d completed %d canceled %d failed %d\n",
		st.Submitted, st.Rejected, st.Completed, st.Canceled, st.Failed)
	fmt.Printf("queue: max depth %d  avg wait %.3fms  busy %.3fs\n",
		st.MaxQueueDepth, 1e3*st.AvgQueueWaitSeconds, st.BusySeconds)

	if !*smoke {
		return
	}
	// Smoke invariants.
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "smoke: "+format+"\n", args...)
		os.Exit(1)
	}
	if firstErr != nil {
		fail("job error: %v", firstErr)
	}
	if completed+canceled != submitted {
		fail("accounting: %d completed + %d canceled != %d submitted", completed, canceled, submitted)
	}
	if st.Completed+st.Canceled+st.Failed != st.Submitted {
		fail("server accounting: %d+%d+%d != %d", st.Completed, st.Canceled, st.Failed, st.Submitted)
	}
	if st.Failed != 0 {
		fail("server reports %d failed jobs", st.Failed)
	}
	if submitted == 0 {
		fail("no jobs submitted")
	}
	// Give transfer goroutines and pool workers a moment to exit.
	for i := 0; i < 50 && runtime.NumGoroutine() > baseline+2; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+2 {
		fail("goroutine leak: %d at start, %d after close", baseline, g)
	}
	fmt.Println("smoke: ok")
}

// makeJob draws one job from the mixed workload: algorithm, size, and
// strategy. On a backend without device lanes only CPU strategies are drawn.
func makeJob(rng *rand.Rand, minLog, maxLog int, hasGPU bool) (hybriddc.JobSpec, error) {
	n := 1 << (minLog + rng.Intn(maxLog-minLog+1))
	data := workload.Uniform(n, rng.Int63())

	var alg hybriddc.Alg
	var err error
	switch rng.Intn(3) {
	case 0:
		alg, err = hybriddc.NewMergesort(data)
	case 1:
		alg, err = hybriddc.NewScan(data)
	default:
		alg, err = hybriddc.NewSum(data)
	}
	if err != nil {
		return hybriddc.JobSpec{}, err
	}

	job := hybriddc.JobSpec{Alg: alg}
	levels := job.Alg.Levels()
	draws := 5
	if !hasGPU {
		draws = 2
	}
	switch rng.Intn(draws) {
	case 0:
		job.Strategy = hybriddc.JobSequential
	case 1:
		job.Strategy = hybriddc.JobBreadthFirstCPU
	case 2:
		job.Strategy = hybriddc.JobBasicHybrid
		job.Crossover = levels / 3
	case 3:
		job.Strategy = hybriddc.JobAdvancedHybrid
		job.Alpha = 0.25 + rng.Float64()/2
		job.Y = levels / 2
	default:
		job.Strategy = hybriddc.JobGPUOnly
	}
	return job, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hpuserve:", err)
		os.Exit(1)
	}
}
