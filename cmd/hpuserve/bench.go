package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/workload"
)

// benchResult is one row of BENCH_serve.json: fused vs unfused throughput
// for one job size, measured in the simulator's virtual time so the numbers
// are deterministic and hardware-independent.
type benchResult struct {
	Size              int     `json:"size"`
	Jobs              int     `json:"jobs"`
	UnfusedJobsPerSec float64 `json:"unfused_jobs_per_sec"`
	FusedJobsPerSec   float64 `json:"fused_jobs_per_sec"`
	Speedup           float64 `json:"speedup"`
	FusedRuns         uint64  `json:"fused_runs"`
	FusedJobs         uint64  `json:"fused_jobs"`
	Identical         bool    `json:"results_identical"`
}

// runFusionBench measures fused vs unfused serving throughput on the HPU1
// simulator: for each job size it submits 64 GPU-only prefix-sum jobs to a
// plain server and to a fusing server, times both workloads in virtual
// seconds, verifies every per-job result is bit-identical across the two,
// and writes the rows to out. It fails (nonzero exit) when any result
// differs, when nothing fused, or when the small-job speedup falls below
// the 1.5x acceptance floor.
func runFusionBench(out string) error {
	sizes := []int{1024, 4096, 16384}
	const jobs = 64
	var rows []benchResult

	for _, n := range sizes {
		datas := make([][]int32, jobs)
		for i := range datas {
			datas[i] = workload.Uniform(n, int64(1000*n+i))
		}

		runAll := func(fused bool) (jobsPerSec float64, outs [][]int64, st hybriddc.ServerStats, err error) {
			be := hybriddc.MustSim(hybriddc.HPU1())
			opts := []hybriddc.ServerOption{hybriddc.WithQueueDepth(jobs)}
			if fused {
				opts = append(opts,
					hybriddc.WithMaxFusedJobs(jobs),
					hybriddc.WithBatchWindow(100*time.Millisecond))
			}
			srv, err := hybriddc.NewServer(be, opts...)
			if err != nil {
				return 0, nil, st, err
			}
			scanners := make([]interface{ Result() []int64 }, jobs)
			handles := make([]*hybriddc.JobHandle, jobs)
			start := be.Now()
			for i := range handles {
				sc, err := hybriddc.NewScan(datas[i])
				if err != nil {
					return 0, nil, st, err
				}
				scanners[i] = sc
				handles[i], err = srv.Submit(context.Background(),
					hybriddc.JobSpec{Alg: sc, Strategy: hybriddc.JobGPUOnly})
				if err != nil {
					return 0, nil, st, err
				}
			}
			for i, h := range handles {
				if _, err := h.Report(); err != nil {
					return 0, nil, st, fmt.Errorf("job %d: %w", i, err)
				}
			}
			elapsed := be.Now() - start
			if err := srv.Close(); err != nil {
				return 0, nil, st, err
			}
			outs = make([][]int64, jobs)
			for i, sc := range scanners {
				outs[i] = sc.Result()
			}
			if elapsed <= 0 {
				return 0, nil, st, fmt.Errorf("virtual clock did not advance")
			}
			return float64(jobs) / elapsed, outs, srv.Stats(), nil
		}

		plainRate, plainOuts, _, err := runAll(false)
		if err != nil {
			return fmt.Errorf("bench-fusion n=%d unfused: %w", n, err)
		}
		fusedRate, fusedOuts, st, err := runAll(true)
		if err != nil {
			return fmt.Errorf("bench-fusion n=%d fused: %w", n, err)
		}

		identical := true
		for i := range plainOuts {
			if len(plainOuts[i]) != len(fusedOuts[i]) {
				identical = false
				break
			}
			for j := range plainOuts[i] {
				if plainOuts[i][j] != fusedOuts[i][j] {
					identical = false
					break
				}
			}
			if !identical {
				break
			}
		}

		row := benchResult{
			Size: n, Jobs: jobs,
			UnfusedJobsPerSec: plainRate,
			FusedJobsPerSec:   fusedRate,
			Speedup:           fusedRate / plainRate,
			FusedRuns:         st.FusedRuns,
			FusedJobs:         st.FusedJobs,
			Identical:         identical,
		}
		rows = append(rows, row)
		fmt.Printf("n=%-6d %d jobs: unfused %8.1f jobs/s  fused %8.1f jobs/s  speedup %.2fx  (%d fused runs, %d fused jobs)\n",
			n, jobs, plainRate, fusedRate, row.Speedup, st.FusedRuns, st.FusedJobs)

		if !identical {
			return fmt.Errorf("bench-fusion n=%d: fused results differ from unfused", n)
		}
		if st.FusedJobs == 0 {
			return fmt.Errorf("bench-fusion n=%d: nothing fused", n)
		}
		if n <= 4096 && row.Speedup < 1.5 {
			return fmt.Errorf("bench-fusion n=%d: speedup %.2fx below the 1.5x acceptance floor", n, row.Speedup)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": rows}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
