package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/workload"
)

// apiConfig parameterizes the remote-serving stack for --api and
// --api-smoke.
type apiConfig struct {
	Addr     string
	Workers  int
	Lanes    int
	Devices  int
	InFlight int
	QDepth   int
}

// apiStack is one running remote-serving stack: a native backend pool, a
// serving server, and the HTTP front-end bound to a real TCP listener, with
// SIGTERM/SIGINT wired to a graceful drain.
type apiStack struct {
	backends []*hybriddc.Native
	pool     *hybriddc.Server
	api      *hybriddc.APIServer
	reg      *hybriddc.Metrics
	rec      *hybriddc.TraceRecorder
	addr     string

	serveDone    chan error // Serve returned: the listener is closed
	shutdownDone chan error // Shutdown finished (nil until triggered)
	stopSignals  func()
}

// startAPI boots the stack and starts serving. On SIGTERM or SIGINT the
// server drains: admission stops (503 + Retry-After), every accepted job
// runs to settlement, and only then does the listener close.
func startAPI(cfg apiConfig) (*apiStack, error) {
	s := &apiStack{
		reg:          hybriddc.NewMetrics(),
		rec:          hybriddc.NewTraceRecorderLimit(1 << 15),
		serveDone:    make(chan error, 1),
		shutdownDone: make(chan error, 1),
	}
	pool := make([]hybriddc.Backend, cfg.Devices)
	for i := range pool {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: cfg.Workers, DeviceLanes: cfg.Lanes})
		if err != nil {
			return nil, err
		}
		s.backends = append(s.backends, be)
		pool[i] = be
	}
	srv, err := hybriddc.NewServerPool(pool,
		hybriddc.WithQueueDepth(cfg.QDepth),
		hybriddc.WithMaxInFlight(cfg.InFlight),
		hybriddc.WithServerMetrics(s.reg),
		hybriddc.WithServerRecorder(s.rec))
	if err != nil {
		return nil, err
	}
	s.pool = srv
	api, err := hybriddc.NewAPIServer(srv,
		hybriddc.WithAPIMetrics(s.reg),
		hybriddc.WithAPIRecorder(s.rec),
		hybriddc.WithAPIEventPoll(5*time.Millisecond))
	if err != nil {
		return nil, err
	}
	s.api = api

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.addr = ln.Addr().String()
	go func() { s.serveDone <- api.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	s.stopSignals = func() { signal.Stop(sigCh) }
	go func() {
		if _, ok := <-sigCh; !ok {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		s.shutdownDone <- api.Shutdown(ctx)
	}()
	return s, nil
}

// closeBackends tears down the pool after the API server has fully stopped.
func (s *apiStack) closeBackends() error {
	s.stopSignals()
	if err := s.pool.Close(); err != nil {
		return err
	}
	for _, be := range s.backends {
		if err := be.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runAPI is --api: serve the remote job API until SIGTERM/SIGINT, drain, and
// exit.
func runAPI(cfg apiConfig) error {
	s, err := startAPI(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("api: serving http://%s/v1/jobs (%d devices, queue %d, inflight %d); SIGTERM drains\n",
		s.addr, cfg.Devices, cfg.QDepth, cfg.InFlight)
	if err := <-s.serveDone; err != nil {
		return err
	}
	if err := <-s.shutdownDone; err != nil {
		return err
	}
	st := s.pool.Stats()
	fmt.Printf("api: drained; served %d jobs (%d completed, %d canceled, %d failed, %d rejected)\n",
		st.Submitted, st.Completed, st.Canceled, st.Failed, st.Rejected)
	return s.closeBackends()
}

// expected computes the reference answer for a smoke job locally, with the
// same arithmetic the algorithms use (int64 accumulation over int32 input),
// so a remote result can be checked bit for bit.
type smokeJob struct {
	kind string
	data []int32
	// exactly one of these is the expectation, matching kind
	sorted []int32
	scan   []int64
	sum    int64
}

func makeSmokeJob(rng *rand.Rand, minLog, maxLog int) smokeJob {
	n := 1 << (minLog + rng.Intn(maxLog-minLog+1))
	j := smokeJob{data: workload.Uniform(n, rng.Int63())}
	switch rng.Intn(3) {
	case 0:
		j.kind = "mergesort"
		j.sorted = append([]int32(nil), j.data...)
		sort.Slice(j.sorted, func(a, b int) bool { return j.sorted[a] < j.sorted[b] })
	case 1:
		j.kind = "scan"
		j.scan = make([]int64, n)
		var acc int64
		for i, v := range j.data {
			acc += int64(v)
			j.scan[i] = acc
		}
	default:
		j.kind = "sum"
		for _, v := range j.data {
			j.sum += int64(v)
		}
	}
	return j
}

// checkSmokeResult verifies bit-identity of a remote result.
func checkSmokeResult(j smokeJob, res hybriddc.APIJobResult) error {
	switch j.kind {
	case "mergesort":
		if len(res.Sorted) != len(j.sorted) {
			return fmt.Errorf("sorted length %d, want %d", len(res.Sorted), len(j.sorted))
		}
		for i := range j.sorted {
			if res.Sorted[i] != j.sorted[i] {
				return fmt.Errorf("sorted[%d] = %d, want %d", i, res.Sorted[i], j.sorted[i])
			}
		}
	case "scan":
		if len(res.Scan) != len(j.scan) {
			return fmt.Errorf("scan length %d, want %d", len(res.Scan), len(j.scan))
		}
		for i := range j.scan {
			if res.Scan[i] != j.scan[i] {
				return fmt.Errorf("scan[%d] = %d, want %d", i, res.Scan[i], j.scan[i])
			}
		}
	default:
		if res.Sum == nil || *res.Sum != j.sum {
			return fmt.Errorf("sum = %v, want %d", res.Sum, j.sum)
		}
	}
	return nil
}

// resultRequests reads the server's result-route request counter over the
// wire.
func resultRequests(cli *hybriddc.APIClient) (uint64, error) {
	raw, err := cli.Metrics(context.Background())
	if err != nil {
		return 0, fmt.Errorf("api-smoke metrics: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return 0, fmt.Errorf("api-smoke metrics decode: %w", err)
	}
	return snap.Counters["api_requests_result_total"], nil
}

// smokeStrategies is the strategy rotation the smoke clients draw from.
var smokeStrategies = []string{"bf-cpu", "seq-1cpu", "basic-hybrid", "advanced-hybrid", "gpu-only"}

// runAPISmoke is --api-smoke, the CI gate for the remote serving stack. Over
// one real TCP listener it drives:
//
//  1. at least `clients` concurrent remote submitters (64 by default) with a
//     mixed mergesort/scan/sum workload across all strategies, every result
//     checked bit-identical against a locally computed reference;
//  2. overload against the deliberately small admission queue, asserting 429s
//     with a Retry-After hint were observed and every eventually-accepted job
//     still returned the right bits;
//  3. one /events SSE stream, asserting per-level execution progress
//     (span events on >= 2 distinct recursion levels) and a terminal "done";
//  4. a /metrics scrape over HTTP, asserting the api_* surface advanced,
//     then a binary-payload client pass (application/x-hpu-int32le frames
//     both ways), every result bit-exact against the local reference and
//     against a JSON round trip of the same data;
//  5. SIGTERM to itself mid-flight, asserting new submissions are refused
//     while every already-accepted job completes before the listener closes.
func runAPISmoke(cfg apiConfig, clients, jobsPerClient int, seed int64) error {
	s, err := startAPI(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("api-smoke: %d clients x %d jobs against http://%s (queue %d, inflight %d)\n",
		clients, jobsPerClient, s.addr, cfg.QDepth, cfg.InFlight)
	base := "http://" + s.addr

	// Phase 1+2: concurrent load with overload-and-retry.
	var (
		wg          sync.WaitGroup
		rejected    atomic.Uint64
		submitted   atomic.Uint64
		verified    atomic.Uint64
		streamSpans atomic.Uint64
		errMu       sync.Mutex
		firstErr    error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	// Distinct recursion levels observed on the streamed job.
	streamLevels := map[int]bool{}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// One transport per client: distinct connections, like distinct
			// remote processes.
			cli := hybriddc.NewAPIClient(base)
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for i := 0; i < jobsPerClient; i++ {
				j := makeSmokeJob(rng, 8, 13)
				req := hybriddc.APIJobRequest{
					Algorithm: j.kind,
					Data:      j.data,
					Strategy:  smokeStrategies[rng.Intn(len(smokeStrategies))],
					Priority:  1 + rng.Intn(4),
				}
				switch req.Strategy {
				case "basic-hybrid":
					req.Crossover = 3
				case "advanced-hybrid":
					req.Alpha = 0.5
					req.Y = 4
				}
				var h *hybriddc.RemoteHandle
				for {
					var err error
					h, err = cli.Submit(context.Background(), req)
					if err == nil {
						break
					}
					var apiErr *hybriddc.APIClientError
					if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
						if apiErr.RetryAfter <= 0 {
							fail(fmt.Errorf("client %d: 429 without Retry-After", c))
							return
						}
						rejected.Add(1)
						time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
						continue
					}
					fail(fmt.Errorf("client %d submit: %w", c, err))
					return
				}
				submitted.Add(1)

				// Client 0's first job doubles as the SSE progress probe.
				if c == 0 && i == 0 {
					err := h.Stream(context.Background(), func(ev hybriddc.APIEvent) error {
						if ev.Type == "span" && (ev.Unit == "cpu" || ev.Unit == "gpu") {
							streamSpans.Add(1)
							errMu.Lock()
							streamLevels[ev.Level] = true
							errMu.Unlock()
						}
						if ev.Type == "done" && (ev.Status == nil || ev.Status.State != "done") {
							return fmt.Errorf("done event without settled status")
						}
						return nil
					})
					if err != nil {
						fail(fmt.Errorf("client %d stream: %w", c, err))
						return
					}
				}

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				res, err := h.Wait(ctx)
				cancel()
				if err != nil {
					fail(fmt.Errorf("client %d wait job %d: %w", c, h.ID(), err))
					return
				}
				if err := checkSmokeResult(j, res); err != nil {
					fail(fmt.Errorf("client %d job %d (%s/%s): %w", c, h.ID(), j.kind, req.Strategy, err))
					return
				}
				verified.Add(1)
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("api-smoke load: %w", firstErr)
	}
	if got := verified.Load(); got != uint64(clients*jobsPerClient) {
		return fmt.Errorf("api-smoke: verified %d of %d jobs", got, clients*jobsPerClient)
	}
	if rejected.Load() == 0 {
		return fmt.Errorf("api-smoke: no 429s observed despite queue depth %d under %d clients", cfg.QDepth, clients)
	}
	if streamSpans.Load() == 0 {
		return fmt.Errorf("api-smoke: /events streamed no execution spans")
	}
	if len(streamLevels) < 2 {
		return fmt.Errorf("api-smoke: /events spans covered %d recursion levels, want >= 2", len(streamLevels))
	}

	// Phase 4: scrape /metrics over the wire.
	cli := hybriddc.NewAPIClient(base)
	raw, err := cli.Metrics(context.Background())
	if err != nil {
		return fmt.Errorf("api-smoke metrics: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Errorf("api-smoke metrics decode: %w", err)
	}
	if snap.Counters["api_requests_total"] == 0 ||
		snap.Counters["api_requests_submit_total"] == 0 ||
		snap.Counters["api_status_2xx_total"] == 0 ||
		snap.Counters["api_status_4xx_total"] == 0 { // the 429s
		return fmt.Errorf("api-smoke: api_* counters did not advance: %v", snap.Counters)
	}

	// Phase 4b: the binary payload path. A WithAPIBinary client submits raw
	// little-endian frames and negotiates binary results; every result must
	// match the locally computed reference bit for bit, and a same-data pair
	// of JSON and binary round trips must agree exactly.
	binVerified := 0
	{
		binCli := hybriddc.NewAPIClient(base, hybriddc.WithAPIBinary())
		rng := rand.New(rand.NewSource(seed ^ 0xb1a4))
		for i := 0; i < 9; i++ {
			j := makeSmokeJob(rng, 8, 12)
			req := hybriddc.APIJobRequest{
				Algorithm: j.kind,
				Data:      j.data,
				Strategy:  smokeStrategies[i%len(smokeStrategies)],
			}
			switch req.Strategy {
			case "basic-hybrid":
				req.Crossover = 3
			case "advanced-hybrid":
				req.Alpha = 0.5
				req.Y = 4
			}
			h, err := binCli.Submit(context.Background(), req)
			if err != nil {
				return fmt.Errorf("api-smoke binary submit (%s/%s): %w", j.kind, req.Strategy, err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			res, err := h.Wait(ctx)
			cancel()
			if err != nil {
				return fmt.Errorf("api-smoke binary wait job %d: %w", h.ID(), err)
			}
			if err := checkSmokeResult(j, res); err != nil {
				return fmt.Errorf("api-smoke binary job %d (%s/%s): %w", h.ID(), j.kind, req.Strategy, err)
			}
			binVerified++
		}
		// Cross-check the two wire formats on identical input.
		pair := smokeJob{kind: "mergesort", data: workload.Uniform(1<<12, seed^0xface)}
		req := hybriddc.APIJobRequest{Algorithm: pair.kind, Data: pair.data, Strategy: "gpu-only"}
		jh, err := cli.Submit(context.Background(), req)
		if err != nil {
			return fmt.Errorf("api-smoke pair JSON submit: %w", err)
		}
		bh, err := binCli.Submit(context.Background(), req)
		if err != nil {
			return fmt.Errorf("api-smoke pair binary submit: %w", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		jres, jerr := jh.Wait(ctx)
		bres, berr := bh.Wait(ctx)
		cancel()
		if jerr != nil || berr != nil {
			return fmt.Errorf("api-smoke pair wait: json %v, binary %v", jerr, berr)
		}
		if len(jres.Sorted) != len(bres.Sorted) {
			return fmt.Errorf("api-smoke pair: JSON %d elements, binary %d", len(jres.Sorted), len(bres.Sorted))
		}
		for i := range jres.Sorted {
			if jres.Sorted[i] != bres.Sorted[i] {
				return fmt.Errorf("api-smoke pair differs at %d: JSON %d, binary %d", i, jres.Sorted[i], bres.Sorted[i])
			}
		}
		binVerified += 2
	}

	// Phase 5: SIGTERM drain. Park slow jobs in flight, then signal
	// ourselves; every accepted job must produce a verified result before
	// the listener closes, while new submissions bounce with 503.
	type pending struct {
		j smokeJob
		h *hybriddc.RemoteHandle
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	var inFlight []pending
	for len(inFlight) < cfg.InFlight+cfg.QDepth {
		// Deliberately slow, deterministic drain jobs: large single-CPU
		// sequential sorts keep the drain window open long enough to observe
		// admission refusal. Fill the queue to capacity; overflow means the
		// window is as wide as it gets.
		j := smokeJob{kind: "mergesort", data: workload.Uniform(1<<18, rng.Int63())}
		j.sorted = append([]int32(nil), j.data...)
		sort.Slice(j.sorted, func(a, b int) bool { return j.sorted[a] < j.sorted[b] })
		h, err := cli.Submit(context.Background(),
			hybriddc.APIJobRequest{Algorithm: j.kind, Data: j.data, Strategy: "seq-1cpu"})
		if err != nil {
			var apiErr *hybriddc.APIClientError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusTooManyRequests {
				break // admission is full: window secured
			}
			return fmt.Errorf("api-smoke drain setup: %w", err)
		}
		inFlight = append(inFlight, pending{j, h})
	}
	if len(inFlight) == 0 {
		return fmt.Errorf("api-smoke drain setup: no jobs accepted")
	}
	// Start the result waits before signaling: these requests ride out the
	// drain on connections that stay served until the jobs settle. The
	// route counter tells us when every wait is parked server-side, so the
	// SIGTERM below cannot race them against the listener close.
	waitBase, err := resultRequests(cli)
	if err != nil {
		return err
	}
	results := make(chan error, len(inFlight))
	for _, p := range inFlight {
		go func(p pending) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			res, err := p.h.Wait(ctx)
			if err != nil {
				results <- fmt.Errorf("drain job %d: %w", p.h.ID(), err)
				return
			}
			results <- checkSmokeResult(p.j, res)
		}(p)
	}
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(time.Millisecond) {
		n, err := resultRequests(cli)
		if err != nil {
			return err
		}
		if n >= waitBase+uint64(len(inFlight)) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("api-smoke: result waits never reached the server (%d of %d)", n-waitBase, len(inFlight))
		}
	}
	// Probe admission continuously from before the signal until either a 503
	// lands or the listener closes under us.
	refusedCh := make(chan bool, 1)
	go func() {
		// Fresh dial per probe: the drain closes idle pooled connections, and
		// a probe riding one would misread that reset as "listener closed".
		probeCli := hybriddc.NewAPIClient(base,
			hybriddc.WithAPIHTTPClient(&http.Client{Transport: &http.Transport{DisableKeepAlives: true}}))
		probe := workload.Uniform(64, 99)
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			_, err := probeCli.Submit(context.Background(), hybriddc.APIJobRequest{Algorithm: "sum", Data: probe})
			var apiErr *hybriddc.APIClientError
			if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
				refusedCh <- true
				return
			}
			// Accepted submissions and transient transport errors both mean
			// "keep probing"; only the deadline concedes.
			time.Sleep(200 * time.Microsecond)
		}
		refusedCh <- false
	}()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return err
	}
	if !<-refusedCh {
		return fmt.Errorf("api-smoke: submissions never refused with 503 during drain")
	}
	for range inFlight {
		if err := <-results; err != nil {
			return fmt.Errorf("api-smoke drain: %w", err)
		}
	}
	// The drained jobs are settled and verified; now the listener must close
	// cleanly and the drain must report success.
	if err := <-s.serveDone; err != nil {
		return fmt.Errorf("api-smoke serve: %w", err)
	}
	if err := <-s.shutdownDone; err != nil {
		return fmt.Errorf("api-smoke shutdown: %w", err)
	}
	st := s.pool.Stats()
	if st.Failed != 0 {
		return fmt.Errorf("api-smoke: pool reports %d failed jobs", st.Failed)
	}
	if err := s.closeBackends(); err != nil {
		return err
	}
	fmt.Printf("api-smoke: ok (%d jobs verified, %d binary-wire jobs bit-exact, %d overload rejections ridden out, %d stream spans, drain clean)\n",
		verified.Load(), binVerified, rejected.Load(), streamSpans.Load())
	return nil
}
