// Chaos soak: drive the server through a seeded fault injector and verify
// the reliability layer masks every injected device failure it promises to
// mask — zero wrong results, bounded shedding, and the retry / fallback /
// hedge / breaker machinery all visibly exercised — then write a JSON fault
// report for CI artifacts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/algos/dcsum"
	"repro/internal/algos/mergesort"
	"repro/internal/algos/scan"
	"repro/internal/workload"
)

// chaosConfig carries the --chaos-* flags.
type chaosConfig struct {
	Jobs      int     `json:"jobs"`
	FaultRate float64 `json:"fault_rate"`
	Seed      int64   `json:"seed"`
	Workers   int     `json:"workers"`
	Lanes     int     `json:"lanes"`
	// Devices >= 2 selects the pool soak: faults are injected into the
	// highest-id device only, and the soak asserts the per-device breaker
	// isolates it (trip, auto-drain, zero healthy-device sheds).
	Devices int `json:"devices"`
}

// chaosReport is the JSON artifact uploaded by CI.
type chaosReport struct {
	Config    chaosConfig          `json:"config"`
	Faults    hybriddc.FaultCounts `json:"injected_faults"`
	Stats     hybriddc.ServerStats `json:"server_stats"`
	Succeeded int                  `json:"succeeded"`
	Verified  int                  `json:"verified_results"`
	Wrong     int                  `json:"wrong_results"`
	Shed      int                  `json:"shed_degraded"`
	Expected  int                  `json:"expected_failures"`
	Anomalies []string             `json:"anomalies"`
	ShedRate  float64              `json:"shed_rate"`
}

// chaosExpected is a job's precomputed ground truth: exactly one field is
// meaningful, keyed by the algorithm the job carries.
type chaosExpected struct {
	sorted []int32
	prefix []int64
	sum    int64
}

// chaosJob pairs a submitted handle with its ground truth and policy class.
type chaosJob struct {
	h        *hybriddc.JobHandle
	want     chaosExpected
	fallback bool // carries WithFallback(CPUOnly): must never fail
}

func runChaos(cfg chaosConfig, reportPath string) error {
	if cfg.Devices >= 2 {
		return runChaosPool(cfg, reportPath)
	}
	baseline := runtime.NumGoroutine()

	be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: cfg.Workers, DeviceLanes: cfg.Lanes})
	if err != nil {
		return err
	}
	// Split the headline fault rate across the injector's kinds, weighted
	// toward hard kernel errors so retry exhaustion and consecutive-fault
	// breaker trips stay reachable at moderate rates. The 2ms stall dwarfs
	// the 300µs hedge delay below, so stuck devices reliably lose the hedge
	// race.
	r := cfg.FaultRate
	in, err := hybriddc.NewFaultInjector(hybriddc.FaultsConfig{
		Seed:              cfg.Seed,
		KernelErrorRate:   0.65 * r,
		TransferErrorRate: 0.10 * r,
		CloseRaceRate:     0.05 * r,
		StuckRate:         0.20 * r,
		Stall:             2 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	reg := hybriddc.NewMetrics()
	rec := hybriddc.NewTraceRecorderLimit(1 << 14)
	srv, err := hybriddc.NewServer(be,
		hybriddc.WithQueueDepth(64),
		hybriddc.WithMaxInFlight(8),
		hybriddc.WithServerMetrics(reg),
		hybriddc.WithServerRecorder(rec),
		hybriddc.WithServerFaults(in),
		hybriddc.WithBreaker(2, 2*time.Millisecond),
	)
	if err != nil {
		return err
	}

	httpAddr, err := serveHTTP("127.0.0.1:0", reg, rec)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := context.Background()
	report := chaosReport{Config: cfg}
	var jobs []chaosJob

	for i := 0; i < cfg.Jobs; i++ {
		spec, want, err := makeChaosJob(rng)
		if err != nil {
			return err
		}
		// Policy mix: every job retries once; most also carry a CPU
		// fallback (these must end correct no matter what the device
		// does), half of those hedge, and the rest are deliberately
		// unprotected so ErrRetriesExhausted / ErrDegraded stay reachable.
		opts := []hybriddc.Option{hybriddc.WithRetry(1, 200*time.Microsecond)}
		hasFallback := rng.Intn(100) < 80
		if hasFallback {
			opts = append(opts, hybriddc.WithFallback(hybriddc.CPUOnly))
			if rng.Intn(2) == 0 {
				opts = append(opts, hybriddc.WithHedge(300*time.Microsecond))
			}
		}

		var h *hybriddc.JobHandle
		for {
			h, err = srv.Submit(ctx, spec, opts...)
			if errors.Is(err, hybriddc.ErrQueueFull) {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			break
		}
		if errors.Is(err, hybriddc.ErrDegraded) {
			report.Shed++
			continue
		}
		if err != nil {
			return fmt.Errorf("chaos: submit job %d: %w", i, err)
		}
		jobs = append(jobs, chaosJob{h: h, want: want, fallback: hasFallback})
	}

	for _, j := range jobs {
		_, err := j.h.Report()
		switch {
		case err == nil:
			report.Succeeded++
			if ok, detail := verifyChaosResult(j.h.ResultAlg(), j.want); ok {
				report.Verified++
			} else {
				report.Wrong++
				if len(report.Anomalies) < 8 {
					report.Anomalies = append(report.Anomalies,
						fmt.Sprintf("job %d: wrong result: %s", j.h.ID, detail))
				}
			}
		case j.fallback:
			// A CPUOnly-fallback job must be masked end to end: the CPU
			// path is never fault-injected and open breakers re-route it.
			report.Anomalies = append(report.Anomalies,
				fmt.Sprintf("job %d: fallback-protected job failed: %v", j.h.ID, err))
		case errors.Is(err, hybriddc.ErrDegraded):
			report.Shed++
		case errors.Is(err, hybriddc.ErrRetriesExhausted) || errors.Is(err, hybriddc.ErrDeviceFault):
			report.Expected++ // unprotected job lost its device-fault gamble
		default:
			report.Anomalies = append(report.Anomalies,
				fmt.Sprintf("job %d: unclassified failure: %v", j.h.ID, err))
		}
	}

	// Scrape the live exposition before teardown, then close.
	var snap snapshot
	if err := scrape(httpAddr, &snap); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := be.Close(); err != nil {
		return err
	}
	st := srv.Stats()
	report.Stats = st
	report.Faults = in.Counts()
	if st.Submitted > 0 {
		report.ShedRate = float64(st.Degraded) / float64(st.Submitted+st.Degraded)
	}

	fmt.Printf("chaos: %d jobs, %d injected faults (%d kernel, %d transfer, %d stuck, %d close-race)\n",
		cfg.Jobs, report.Faults.Injected, report.Faults.KernelErrors,
		report.Faults.TransferErrors, report.Faults.StuckLaunches, report.Faults.CloseRaces)
	fmt.Printf("chaos: %d succeeded (%d verified, %d wrong), %d shed, %d expected failures\n",
		report.Succeeded, report.Verified, report.Wrong, report.Shed, report.Expected)
	fmt.Printf("chaos: retries %d  fallbacks %d  hedge wins %d  breaker trips %d  shed rate %.3f\n",
		st.Retries, st.Fallbacks, st.HedgeWins, st.BreakerTrips, report.ShedRate)

	// Write the artifact before asserting, so a failing soak still uploads
	// its evidence.
	if reportPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("chaos: report written to %s\n", reportPath)
	}

	// Soak invariants.
	fail := func(format string, args ...any) error { return fmt.Errorf("chaos: "+format, args...) }
	if len(report.Anomalies) > 0 {
		return fail("%d anomalies, first: %s", len(report.Anomalies), report.Anomalies[0])
	}
	if report.Wrong != 0 {
		return fail("%d wrong results", report.Wrong)
	}
	if report.Succeeded == 0 || report.Verified != report.Succeeded {
		return fail("verified %d of %d successes", report.Verified, report.Succeeded)
	}
	if report.Faults.Injected == 0 {
		return fail("injector never fired (%d attempts)", report.Faults.Attempts)
	}
	if st.Retries == 0 || snap.Counters["serve_retries_total"] != st.Retries {
		return fail("serve_retries_total = %d, server says %d: retries invisible or absent",
			snap.Counters["serve_retries_total"], st.Retries)
	}
	if st.Fallbacks == 0 || snap.Counters["serve_fallbacks_total"] != st.Fallbacks {
		return fail("serve_fallbacks_total = %d, server says %d: fallbacks invisible or absent",
			snap.Counters["serve_fallbacks_total"], st.Fallbacks)
	}
	if st.BreakerTrips == 0 || snap.Counters["serve_breaker_trips_total"] != st.BreakerTrips {
		return fail("serve_breaker_trips_total = %d, server says %d: breaker never tripped",
			snap.Counters["serve_breaker_trips_total"], st.BreakerTrips)
	}
	if st.HedgeWins == 0 || snap.Counters["serve_hedge_wins_total"] != st.HedgeWins {
		return fail("serve_hedge_wins_total = %d, server says %d: no hedge ever won",
			snap.Counters["serve_hedge_wins_total"], st.HedgeWins)
	}
	if report.ShedRate > 0.5 {
		return fail("shed rate %.3f exceeds 0.5: breaker never recovering", report.ShedRate)
	}
	// Give transfer goroutines, pool workers, and hedge drains a moment to
	// exit. The HTTP listener goroutine is intentionally still alive.
	for i := 0; i < 50 && runtime.NumGoroutine() > baseline+3; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+3 {
		return fail("goroutine leak: %d at start, %d after close", baseline, g)
	}
	fmt.Println("chaos: ok")
	return nil
}

// makeChaosJob draws one GPU-bound (or occasionally CPU) job over a small
// input and precomputes its ground truth in plain Go, so result verification
// is independent of every executor under test.
func makeChaosJob(rng *rand.Rand) (hybriddc.JobSpec, chaosExpected, error) {
	n := 1 << (10 + rng.Intn(4)) // 2^10 .. 2^13
	data := workload.Uniform(n, rng.Int63())

	var want chaosExpected
	var alg hybriddc.Alg
	var fresh func() (hybriddc.Alg, error)
	var err error
	switch rng.Intn(3) {
	case 0:
		alg, err = hybriddc.NewMergesort(data)
		fresh = func() (hybriddc.Alg, error) { a, err := hybriddc.NewMergesort(data); return a, err }
		want.sorted = append([]int32(nil), data...)
		insertionFreeSort(want.sorted)
	case 1:
		alg, err = hybriddc.NewScan(data)
		fresh = func() (hybriddc.Alg, error) { a, err := hybriddc.NewScan(data); return a, err }
		want.prefix = make([]int64, n)
		var acc int64
		for i, v := range data {
			acc += int64(v)
			want.prefix[i] = acc
		}
	default:
		alg, err = hybriddc.NewSum(data)
		fresh = func() (hybriddc.Alg, error) { a, err := hybriddc.NewSum(data); return a, err }
		for _, v := range data {
			want.sum += int64(v)
		}
	}
	if err != nil {
		return hybriddc.JobSpec{}, want, err
	}

	spec := hybriddc.JobSpec{Alg: alg, Fresh: fresh}
	levels := alg.Levels()
	switch rng.Intn(6) {
	case 0: // keep some pure-CPU traffic in the mix
		spec.Strategy = hybriddc.JobBreadthFirstCPU
	case 1, 2:
		spec.Strategy = hybriddc.JobBasicHybrid
		spec.Crossover = levels / 3
	case 3:
		spec.Strategy = hybriddc.JobAdvancedHybrid
		spec.Alpha = 0.25 + rng.Float64()/2
		spec.Y = levels / 2
	default:
		spec.Strategy = hybriddc.JobGPUOnly
	}
	return spec, want, nil
}

// insertionFreeSort sorts in place without sort.Slice's reflection, keeping
// the ground-truth path trivially auditable (bottom-up merge, same element
// type as the algorithm under test but none of its code).
func insertionFreeSort(a []int32) {
	buf := make([]int32, len(a))
	for width := 1; width < len(a); width *= 2 {
		for lo := 0; lo < len(a); lo += 2 * width {
			mid, hi := lo+width, lo+2*width
			if mid > len(a) {
				mid = len(a)
			}
			if hi > len(a) {
				hi = len(a)
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if a[i] <= a[j] {
					buf[k] = a[i]
					i++
				} else {
					buf[k] = a[j]
					j++
				}
				k++
			}
			for i < mid {
				buf[k] = a[i]
				i, k = i+1, k+1
			}
			for j < hi {
				buf[k] = a[j]
				j, k = j+1, k+1
			}
			copy(a[lo:hi], buf[lo:hi])
		}
	}
}

// runChaosPool is the multi-device soak: a pool in which only the
// highest-id device is fault-injected. Every job carries retry + CPU
// fallback, so the acceptance bar is absolute — zero wrong results, zero
// failures, zero ErrDegraded sheds — while the faulty device's breaker must
// visibly trip and (WithAutoDrain) drain the device out of the pool.
func runChaosPool(cfg chaosConfig, reportPath string) error {
	baseline := runtime.NumGoroutine()

	pool := make([]hybriddc.Backend, cfg.Devices)
	natives := make([]*hybriddc.Native, cfg.Devices)
	for i := range pool {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: cfg.Workers, DeviceLanes: cfg.Lanes})
		if err != nil {
			return err
		}
		natives[i] = be
		pool[i] = be
	}
	faulty := cfg.Devices - 1
	// The faulty device gets the full headline rate as hard kernel errors:
	// retried jobs fault twice in a row, so the consecutive-fault breaker
	// threshold below is reliably reachable.
	in, err := hybriddc.NewFaultInjector(hybriddc.FaultsConfig{
		Seed:              cfg.Seed,
		KernelErrorRate:   0.8 * cfg.FaultRate,
		TransferErrorRate: 0.2 * cfg.FaultRate,
	})
	if err != nil {
		return err
	}
	reg := hybriddc.NewMetrics()
	rec := hybriddc.NewTraceRecorderLimit(1 << 14)
	srv, err := hybriddc.NewServerPool(pool,
		hybriddc.WithQueueDepth(64),
		hybriddc.WithMaxInFlight(4),
		hybriddc.WithServerMetrics(reg),
		hybriddc.WithServerRecorder(rec),
		hybriddc.WithDeviceFaults(faulty, in),
		hybriddc.WithBreaker(2, time.Minute),
		hybriddc.WithAutoDrain(),
	)
	if err != nil {
		return err
	}

	httpAddr, err := serveHTTP("127.0.0.1:0", reg, rec)
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	ctx := context.Background()
	report := chaosReport{Config: cfg}
	var jobs []chaosJob

	for i := 0; i < cfg.Jobs; i++ {
		spec, want, err := makeChaosJob(rng)
		if err != nil {
			return err
		}
		var h *hybriddc.JobHandle
		for {
			h, err = srv.Submit(ctx, spec,
				hybriddc.WithRetry(1, 0), hybriddc.WithFallback(hybriddc.CPUOnly))
			if errors.Is(err, hybriddc.ErrQueueFull) {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			break
		}
		if err != nil {
			return fmt.Errorf("chaos-pool: submit job %d: %w", i, err)
		}
		jobs = append(jobs, chaosJob{h: h, want: want, fallback: true})
	}

	for _, j := range jobs {
		if _, err := j.h.Report(); err != nil {
			report.Anomalies = append(report.Anomalies,
				fmt.Sprintf("job %d: fully protected job failed: %v", j.h.ID, err))
			continue
		}
		report.Succeeded++
		if ok, detail := verifyChaosResult(j.h.ResultAlg(), j.want); ok {
			report.Verified++
		} else {
			report.Wrong++
			if len(report.Anomalies) < 8 {
				report.Anomalies = append(report.Anomalies,
					fmt.Sprintf("job %d: wrong result: %s", j.h.ID, detail))
			}
		}
	}

	var snap snapshot
	if err := scrape(httpAddr, &snap); err != nil {
		return err
	}
	if err := srv.Close(); err != nil {
		return err
	}
	for _, be := range natives {
		if err := be.Close(); err != nil {
			return err
		}
	}
	st := srv.Stats()
	report.Stats = st
	report.Faults = in.Counts()

	fmt.Printf("chaos-pool: %d jobs over %d devices (device %d faulty), %d injected faults\n",
		cfg.Jobs, cfg.Devices, faulty, report.Faults.Injected)
	fmt.Printf("chaos-pool: %d succeeded (%d verified, %d wrong), retries %d  fallbacks %d  rebalanced %d\n",
		report.Succeeded, report.Verified, report.Wrong, st.Retries, st.Fallbacks, st.Rebalanced)
	for _, d := range st.Devices {
		fmt.Printf("chaos-pool: device %d: placements %d  trips %d  breaker %d  removed %v\n",
			d.ID, d.Placements, d.BreakerTrips, d.BreakerState, d.Removed)
	}

	if reportPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(reportPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("chaos-pool: report written to %s\n", reportPath)
	}

	fail := func(format string, args ...any) error { return fmt.Errorf("chaos-pool: "+format, args...) }
	if len(report.Anomalies) > 0 {
		return fail("%d anomalies, first: %s", len(report.Anomalies), report.Anomalies[0])
	}
	if report.Wrong != 0 || report.Verified != cfg.Jobs {
		return fail("verified %d of %d jobs (%d wrong)", report.Verified, cfg.Jobs, report.Wrong)
	}
	if report.Faults.Injected == 0 {
		return fail("injector never fired (%d attempts)", report.Faults.Attempts)
	}
	if st.Degraded != 0 {
		return fail("%d ErrDegraded sheds: healthy devices must absorb the full load", st.Degraded)
	}
	fd := st.Devices[faulty]
	if fd.BreakerTrips == 0 {
		return fail("faulty device %d never tripped its breaker", faulty)
	}
	if !fd.Removed {
		return fail("faulty device %d not auto-drained (draining %v)", faulty, fd.Draining)
	}
	if st.Drains == 0 || snap.Counters["serve_drains_total"] != st.Drains {
		return fail("serve_drains_total = %d, server says %d: drain invisible or absent",
			snap.Counters["serve_drains_total"], st.Drains)
	}
	for _, d := range st.Devices {
		if d.ID != faulty && d.BreakerTrips != 0 {
			return fail("healthy device %d tripped %d times", d.ID, d.BreakerTrips)
		}
	}
	if snap.Counters["serve_breaker_trips_total"] != st.BreakerTrips {
		return fail("serve_breaker_trips_total = %d, server says %d",
			snap.Counters["serve_breaker_trips_total"], st.BreakerTrips)
	}
	if snap.Counters["serve_rebalances_total"] != st.Rebalanced {
		return fail("serve_rebalances_total = %d, server says %d",
			snap.Counters["serve_rebalances_total"], st.Rebalanced)
	}
	for i := 0; i < 50 && runtime.NumGoroutine() > baseline+3; i++ {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline+3 {
		return fail("goroutine leak: %d at start, %d after close", baseline, g)
	}
	fmt.Println("chaos-pool: ok")
	return nil
}

// verifyChaosResult checks the winning instance's output against the ground
// truth, whichever executor (device, retry, hedge, or fallback) produced it.
func verifyChaosResult(alg hybriddc.Alg, want chaosExpected) (bool, string) {
	switch a := alg.(type) {
	case *mergesort.Sorter:
		got := a.Result()
		if len(got) != len(want.sorted) {
			return false, fmt.Sprintf("mergesort length %d != %d", len(got), len(want.sorted))
		}
		for i := range got {
			if got[i] != want.sorted[i] {
				return false, fmt.Sprintf("mergesort[%d] = %d, want %d", i, got[i], want.sorted[i])
			}
		}
	case *scan.Scanner:
		got := a.Result()
		if len(got) != len(want.prefix) {
			return false, fmt.Sprintf("scan length %d != %d", len(got), len(want.prefix))
		}
		for i := range got {
			if got[i] != want.prefix[i] {
				return false, fmt.Sprintf("scan[%d] = %d, want %d", i, got[i], want.prefix[i])
			}
		}
	case *dcsum.Summer:
		if got := a.Result(); got != want.sum {
			return false, fmt.Sprintf("sum = %d, want %d", got, want.sum)
		}
	default:
		return false, fmt.Sprintf("unknown result type %T", alg)
	}
	return true, ""
}
