// Command hpucalib runs the paper's §6.4 parameter-estimation procedures on
// a simulated platform: the element-wise-sum saturation sweep that finds the
// GPU parallelism g (Fig 5) and the single-thread merge comparison that
// finds the scalar ratio γ (Fig 6). The output is the platform's Table 2
// row plus the raw curves.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ascii"
	"repro/internal/estimate"
	"repro/internal/hpu"
	"repro/internal/stats"
)

func main() {
	var (
		platform   = flag.String("platform", "", "platform to calibrate (HPU1, HPU2; empty = both)")
		work       = flag.Int("work", 1<<26, "total elements per saturation launch")
		maxThreads = flag.Int("maxthreads", 10000, "saturation sweep upper bound")
		step       = flag.Int("step", 8, "saturation sweep thread increment")
		curves     = flag.Bool("curves", false, "print the raw estimation curves")
	)
	flag.Parse()

	var platforms []hpu.Platform
	if *platform == "" {
		platforms = hpu.Platforms()
	} else {
		pl, ok := hpu.ByName(*platform)
		if !ok {
			fmt.Fprintf(os.Stderr, "hpucalib: unknown platform %q\n", *platform)
			os.Exit(2)
		}
		platforms = []hpu.Platform{pl}
	}

	var rows [][]string
	for _, pl := range platforms {
		scfg := estimate.SaturationConfig{
			Work: *work, MaxThreads: *maxThreads, Step: *step, Tolerance: 0.02,
		}
		g, satPts, err := estimate.EstimateG(pl, scfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpucalib: %s: %v\n", pl.Name, err)
			os.Exit(1)
		}
		gammaInv, gammaPts, err := estimate.EstimateGammaInv(pl, estimate.DefaultGammaConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "hpucalib: %s: %v\n", pl.Name, err)
			os.Exit(1)
		}
		rows = append(rows, []string{
			pl.Name,
			fmt.Sprintf("%d", pl.CPU.Cores),
			fmt.Sprintf("%d", g),
			fmt.Sprintf("%.1f", gammaInv),
		})
		if *curves {
			fmt.Printf("\n--- %s saturation curve (g knee = %d) ---\n", pl.Name, g)
			ch := ascii.DefaultChart()
			fmt.Print(ch.RenderSeries([]string{"time vs threads"}, [][]stats.Point{satPts}))
			fmt.Printf("\n--- %s merge ratio curve (mean 1/γ = %.1f) ---\n", pl.Name, gammaInv)
			var rp []stats.Point
			for _, p := range gammaPts {
				rp = append(rp, stats.Point{X: float64(p.Size), Y: p.Ratio})
			}
			fmt.Print(ch.RenderSeries([]string{"GPU/CPU"}, [][]stats.Point{rp}))
		}
	}
	fmt.Println("\nEstimated platform parameters (paper Table 2):")
	fmt.Print(ascii.RenderTable([]string{"Platform", "p", "g", "1/γ"}, rows))
	fmt.Println("paper: HPU1 (4, 4096, 160); HPU2 (4, 1200, 65)")
}
