// Command hpusort sorts a random array with the hybrid mergesort under a
// chosen strategy and backend, reporting the time and the speedup over the
// single-core recursive baseline.
//
// With -backend sim (default) it runs on the simulated HPU of the paper and
// times are virtual; with -backend native it runs on real goroutines on this
// machine and times are wall-clock (no GPU: the device pool is goroutines).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		logN      = flag.Int("logn", 20, "input size exponent: n = 2^logn")
		strategy  = flag.String("strategy", "advanced", "seq, bf, basic, advanced, or gpu")
		backend   = flag.String("backend", "sim", "sim or native")
		platform  = flag.String("platform", "HPU1", "simulated platform (HPU1 or HPU2)")
		alpha     = flag.Float64("alpha", -1, "advanced: CPU work ratio (default: model optimum)")
		y         = flag.Int("y", -1, "advanced: transfer level (default: model optimum)")
		seed      = flag.Int64("seed", 1, "input seed")
		workers   = flag.Int("workers", 0, "native: CPU pool size (0 = GOMAXPROCS)")
		lanes     = flag.Int("lanes", 256, "native: device pool size")
		tuneIt    = flag.Bool("tune", false, "advanced: find (alpha, y) empirically instead of using the model")
		showTrace = flag.Bool("trace", false, "print a Gantt timeline and per-unit utilization")
		traceOut  = flag.String("traceout", "", "write a Chrome trace-event JSON file")
	)
	flag.Parse()

	n := 1 << *logN
	in := workload.Uniform(n, *seed)

	newBackend := func() (hybriddc.Backend, func(), error) {
		switch *backend {
		case "sim":
			pl, err := platformByName(*platform)
			if err != nil {
				return nil, nil, err
			}
			be, err := hybriddc.NewSim(pl)
			return be, func() {}, err
		case "native":
			be, err := hybriddc.NewNative(hybriddc.NativeConfig{
				CPUWorkers: *workers, DeviceLanes: *lanes,
			})
			if err != nil {
				return nil, nil, err
			}
			return be, func() { be.Close() }, nil
		default:
			return nil, nil, fmt.Errorf("unknown backend %q", *backend)
		}
	}

	// Baseline.
	be, closeBe, err := newBackend()
	check(err)
	s, err := hybriddc.NewMergesort(in)
	check(err)
	seq, err := hybriddc.RunSequentialCtx(context.Background(), be, s)
	check(err)
	verify(s.Result())
	closeBe()
	fmt.Printf("sequential 1-core: %.4fs\n", seq.Seconds)

	if *strategy == "seq" {
		return
	}

	rawBe, closeBe, err := newBackend()
	check(err)
	defer closeBe()
	be = rawBe
	var rec *trace.Recorder
	if *showTrace || *traceOut != "" {
		rec = trace.NewRecorder()
		be = trace.Wrap(rawBe, rec)
	}
	s, err = hybriddc.NewMergesort(in)
	check(err)

	var rep hybriddc.Report
	switch *strategy {
	case "bf":
		rep, err = hybriddc.RunBreadthFirstCPUCtx(context.Background(), be, s)
		check(err)
	case "basic":
		x := 10
		if sim, ok := rawBe.(*hybriddc.Sim); ok {
			if c, ok := hybriddc.BasicCrossover(2, hybriddc.MachineOf(sim)); ok {
				x = c
			}
		}
		if x > *logN {
			x = *logN
		}
		rep, err = hybriddc.RunBasicHybridCtx(context.Background(), be, s, x, hybriddc.WithCoalesce())
		check(err)
	case "advanced":
		a, yy := *alpha, *y
		if *tuneIt {
			res, err := hybriddc.TuneAdvanced(func(ta float64, ty int) (float64, error) {
				tb, closeTb, err := newBackend()
				if err != nil {
					return 0, err
				}
				defer closeTb()
				ts, err := hybriddc.NewMergesort(in)
				if err != nil {
					return 0, err
				}
				rep, err := hybriddc.RunAdvancedHybridCtx(context.Background(), tb, ts,
					ta, ty, hybriddc.WithCoalesce())
				return rep.Seconds, err
			}, hybriddc.TuneConfig{Levels: *logN})
			check(err)
			a, yy = res.Alpha, res.Y
			fmt.Printf("tuned over %d trials\n", res.Trials)
		}
		if sim, ok := rawBe.(*hybriddc.Sim); ok && (a < 0 || yy < 0) {
			pa, py := hybriddc.PlanAdvanced(sim, s)
			if a < 0 {
				a = pa
			}
			if yy < 0 {
				yy = py
			}
		}
		if a < 0 {
			a = 0.16
		}
		if yy < 0 || yy > *logN {
			yy = *logN / 2
		}
		fmt.Printf("advanced parameters: alpha=%.3f y=%d\n", a, yy)
		rep, err = hybriddc.RunAdvancedHybridCtx(context.Background(), be, s,
			a, yy, hybriddc.WithCoalesce())
		check(err)
	case "gpu":
		ps, err2 := hybriddc.NewParallelMergesort(in)
		check(err2)
		rep, err = hybriddc.RunGPUOnlyCtx(context.Background(), be, ps)
		check(err)
		verify(ps.Result())
		fmt.Printf("%s: total %.4fs (device %.4fs), speedup %.2fx (%.2fx sort-only)\n",
			rep.Strategy, rep.Seconds, rep.GPUPortionSeconds,
			seq.Seconds/rep.Seconds, seq.Seconds/rep.GPUPortionSeconds)
		return
	default:
		fmt.Fprintf(os.Stderr, "hpusort: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	verify(s.Result())
	fmt.Printf("%s: %.4fs, speedup %.2fx\n", rep.Strategy, rep.Seconds, seq.Seconds/rep.Seconds)
	emitTrace(rec, *showTrace, *traceOut)
}

// emitTrace prints and/or writes the recorded timeline.
func emitTrace(rec *trace.Recorder, show bool, outPath string) {
	if rec == nil {
		return
	}
	if show {
		fmt.Println()
		fmt.Print(rec.Gantt(72))
		for unit, f := range rec.Utilization() {
			fmt.Printf("utilization %-5s %5.1f%%\n", unit, 100*f)
		}
	}
	if outPath != "" {
		f, err := os.Create(outPath)
		check(err)
		defer f.Close()
		check(rec.WriteChromeTrace(f))
		fmt.Printf("chrome trace written to %s\n", outPath)
	}
}

func platformByName(name string) (hybriddc.Platform, error) {
	switch name {
	case "HPU1":
		return hybriddc.HPU1(), nil
	case "HPU2":
		return hybriddc.HPU2(), nil
	}
	return hybriddc.Platform{}, fmt.Errorf("unknown platform %q", name)
}

func verify(out []int32) {
	if !workload.IsSorted(out) {
		fmt.Fprintln(os.Stderr, "hpusort: OUTPUT NOT SORTED")
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpusort: %v\n", err)
		os.Exit(1)
	}
}
