// Command hpumodel explores the paper's §5 analytic HPU model for a
// divide-and-conquer recurrence T(n) = a·T(n/b) + Θ(n^{log_b a}): the basic
// crossover level, the advanced division's y(α) and GPU-work curves, the
// optimal work ratio α*, and the predicted speedup.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ascii"
	"repro/internal/model"
	"repro/internal/stats"
)

func main() {
	var (
		a        = flag.Int("a", 2, "recurrence branching factor a")
		b        = flag.Int("b", 2, "recurrence size divisor b")
		logN     = flag.Int("logn", 24, "input size exponent: n = b^logn")
		p        = flag.Int("p", 4, "CPU cores")
		g        = flag.Int("g", 4096, "GPU cores (saturation threads)")
		gammaInv = flag.Float64("gammainv", 160, "1/γ: CPU/GPU scalar speed ratio")
		chart    = flag.Bool("chart", true, "render the y(α) and GPU-work charts")
	)
	flag.Parse()

	mach := model.Machine{P: *p, G: *g, Gamma: 1 / *gammaInv}
	n := 1.0
	for i := 0; i < *logN; i++ {
		n *= float64(*b)
	}
	poly, err := model.NewPoly(*a, *b, n, mach)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpumodel: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("Recurrence: T(n) = %d·T(n/%d) + Θ(n^%.3f),  n = %.4g (%d levels)\n",
		*a, *b, poly.Levels()/float64(*logN), n, *logN)
	fmt.Printf("Machine:    p = %d, g = %d, 1/γ = %.0f\n\n", *p, *g, *gammaInv)

	if x, ok := model.BasicCrossover(*a, mach); ok {
		fmt.Printf("Basic division (§5.1): run levels 0..%d on the CPU, %d and below on the GPU\n", x-1, x)
	} else {
		fmt.Println("Basic division (§5.1): γ·g < p — the GPU never wins; stay on the CPU")
	}

	alpha, y, frac := poly.Optimum()
	fmt.Printf("\nAdvanced division (§5.2):\n")
	fmt.Printf("  optimal work ratio   α* = %.4f\n", alpha)
	fmt.Printf("  transfer level       y  = %.2f\n", y)
	fmt.Printf("  GPU share of work       = %.1f%%\n", 100*frac)

	num, err := model.NewNumeric(*a, *b, *logN,
		func(size float64) float64 { return size * poly.LevelWork() / n }, 1, mach)
	if err == nil && *a == *b {
		// For a=b the level cost function is exactly f(size)=size.
		yi := int(y + 0.5)
		if yi > *logN {
			yi = *logN
		}
		if pr, err := num.PredictAdvanced(alpha, yi, num.DefaultSplit(alpha, yi)); err == nil {
			fmt.Printf("  predicted speedup       = %.2fx over one core\n",
				num.SequentialTime()/pr.Makespan)
		}
	}

	if *chart {
		var yPts, wPts []stats.Point
		lo := poly.MinAlpha()
		for i := 0; i <= 160; i++ {
			al := lo + (0.999-lo)*float64(i)/160
			yv, _ := poly.Y(al)
			yPts = append(yPts, stats.Point{X: al, Y: yv})
			wPts = append(wPts, stats.Point{X: al, Y: 100 * poly.GPUWorkFraction(al)})
		}
		ch := ascii.DefaultChart()
		fmt.Println("\nTransfer level y(α):")
		fmt.Print(ch.RenderSeries([]string{"y(alpha)"}, [][]stats.Point{yPts}))
		fmt.Println("\nGPU share of total work (%):")
		fmt.Print(ch.RenderSeries([]string{"GPU work %"}, [][]stats.Point{wPts}))
	}
}
