// Command hpureport runs the full evaluation at paper scale and emits a
// Markdown paper-vs-measured table for every reproduced artifact — the data
// section of EXPERIMENTS.md. Runtime is dominated by the n = 2^24 mergesort
// sweeps (several minutes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/estimate"
	"repro/internal/exp"
	"repro/internal/hpu"
	"repro/internal/model"
)

func main() {
	maxLogN := flag.Int("maxlogn", 24, "largest input size exponent for the sweeps")
	flag.Parse()

	fmt.Println("| ID | Artifact | Paper | Measured (this repo) |")
	fmt.Println("|---|---|---|---|")

	// Table 2: estimated platform parameters.
	for i, pl := range hpu.Platforms() {
		res, err := estimate.Platform(pl)
		check(err)
		paper := [2]string{"p=4, g=4096, 1/γ=160", "p=4, g=1200, 1/γ=65"}[i]
		row("T2", fmt.Sprintf("%s parameters", pl.Name), paper,
			fmt.Sprintf("p=%d, g=%d, 1/γ=%.0f", res.P, res.G, res.GammaInv))
	}

	// Fig 3/4: model optimum.
	poly, err := model.NewPoly(2, 2, 1<<24, model.Machine{P: 4, G: 4096, Gamma: 1.0 / 160})
	check(err)
	alpha, y, frac := poly.Optimum()
	row("F3/F4", "model optimum (HPU1, n=2^24)",
		"α*≈0.16, y≈10, GPU work ≈52%",
		fmt.Sprintf("α*=%.3f, y=%.2f, GPU work %.1f%%", alpha, y, 100*frac))

	// Fig 5: saturation knees.
	for i, pl := range hpu.Platforms() {
		g, _, err := estimate.EstimateG(pl, estimate.DefaultSaturationConfig())
		check(err)
		row("F5", fmt.Sprintf("%s saturation knee", pl.Name),
			[]string{"4096", "1200"}[i], fmt.Sprintf("%d", g))
	}

	// Fig 6: scalar ratios.
	for i, pl := range hpu.Platforms() {
		inv, _, err := estimate.EstimateGammaInv(pl, estimate.DefaultGammaConfig())
		check(err)
		row("F6", fmt.Sprintf("%s 1/γ (flat in size)", pl.Name),
			[]string{"≈160", "≈65"}[i], fmt.Sprintf("%.1f", inv))
	}

	// Fig 7: α sweep at n = maxLogN on HPU1.
	{
		cfg := exp.DefaultFig7Config()
		cfg.LogN = *maxLogN
		fig, err := exp.Fig7(cfg)
		check(err)
		bestSp, bestAlpha, bestY := 0.0, 0.0, ""
		for _, s := range fig.Series {
			for _, p := range s.Points {
				if p.Y > bestSp {
					bestSp, bestAlpha, bestY = p.Y, p.X, s.Name
				}
			}
		}
		row("F7", fmt.Sprintf("best (α, y) cell, HPU1 n=2^%d", *maxLogN),
			"≈4.5x near α≈0.16, y 9–11",
			fmt.Sprintf("%.2fx at α=%.2f, %s", bestSp, bestAlpha, bestY))
	}

	// Fig 8 + Fig 10: per-size sweeps on both platforms.
	for i, pl := range hpu.Platforms() {
		cfg := exp.DefaultSweepConfig(pl)
		var sizes []int
		for _, s := range cfg.LogNs {
			if s <= *maxLogN {
				sizes = append(sizes, s)
			}
		}
		cfg.LogNs = sizes
		results, err := exp.MergesortSweep(cfg)
		check(err)
		bestSp, bestPred, atLogN := 0.0, 0.0, 0
		for _, r := range results {
			if sp := r.SeqSeconds / r.BestSeconds; sp > bestSp {
				bestSp, bestPred, atLogN = sp, r.PredSpeedup, r.LogN
			}
		}
		last := results[len(results)-1]
		paperBest := []string{"4.54x (predicted 5.47x)", "4.35x (predicted 5.7x)"}[i]
		row("F8", fmt.Sprintf("%s max hybrid speedup", pl.Name), paperBest,
			fmt.Sprintf("%.2fx at n=2^%d (predicted %.2fx)", bestSp, atLogN, bestPred))
		row("F10", fmt.Sprintf("%s best (α, y) at n=2^%d", pl.Name, last.LogN),
			"obtained ≈ predicted at large n",
			fmt.Sprintf("obtained α=%.3f y=%d vs predicted α=%.3f y=%d",
				last.BestAlpha, last.BestY, last.PredAlpha, last.PredY))
		if i == 0 {
			// The paper notes the roll-off past 2^20 on both platforms.
			var at20, atMax float64
			for _, r := range results {
				if r.LogN == 20 {
					at20 = r.SeqSeconds / r.BestSeconds
				}
			}
			atMax = last.SeqSeconds / last.BestSeconds
			row("F8", "HPU1 roll-off past n=2^20", "speedup declines (LLC exhaustion)",
				fmt.Sprintf("%.2fx at 2^20 → %.2fx at 2^%d", at20, atMax, last.LogN))
		}
	}

	// Fig 9: GPU-only parallel merge.
	{
		cfg := exp.DefaultFig9Config()
		var sizes []int
		for _, s := range cfg.LogNs {
			if s <= *maxLogN {
				sizes = append(sizes, s)
			}
		}
		cfg.LogNs = sizes
		_, speedups, err := exp.Fig9(cfg)
		check(err)
		sortOnly := speedups.Series[0].Points
		withXfer := speedups.Series[1].Points
		lastS := sortOnly[len(sortOnly)-1].Y
		lastX := withXfer[len(withXfer)-1].Y
		row("F9", fmt.Sprintf("GPU-only speedup, HPU1 n=2^%d", *maxLogN),
			"18–20x sort-only, ≈12x with transfers",
			fmt.Sprintf("%.1fx sort-only, %.1fx with transfers", lastS, lastX))
	}
	fmt.Fprintln(os.Stderr, "hpureport: done")
}

func row(id, artifact, paper, measured string) {
	fmt.Printf("| %s | %s | %s | %s |\n", id, artifact, paper, measured)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpureport: %v\n", err)
		os.Exit(1)
	}
}
