// Command hpubench regenerates every table and figure of the paper's
// evaluation on the simulated HPU platforms.
//
// Usage:
//
//	hpubench [-exp all|table1|table2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10]
//	         [-platform HPU1|HPU2] [-logn N] [-quick] [-points]
//
// By default paper-scale inputs are used (n up to 2^24 for mergesort
// figures); -quick caps sizes at 2^18 for a fast smoke run. -points prints
// raw (x, y) series data after each chart, suitable for re-plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/ascii"
	"repro/internal/exp"
	"repro/internal/export"
	"repro/internal/hpu"
	"repro/internal/stats"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment to run (all, table1, table2, fig3..fig10)")
		platform = flag.String("platform", "HPU1", "platform for single-platform figures (HPU1 or HPU2)")
		logN     = flag.Int("logn", 0, "override input size exponent for fig3/fig4/fig7")
		quick    = flag.Bool("quick", false, "cap sweep sizes at 2^18 for a fast run")
		points   = flag.Bool("points", false, "print raw series points after each figure")
		outDir   = flag.String("outdir", "", "also write each artifact as CSV and JSON into this directory")
	)
	flag.Parse()

	pl, ok := hpu.ByName(*platform)
	if !ok {
		fmt.Fprintf(os.Stderr, "hpubench: unknown platform %q (want HPU1 or HPU2)\n", *platform)
		os.Exit(2)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "hpubench: %v\n", err)
			os.Exit(1)
		}
	}
	r := &runner{platform: pl, logN: *logN, quick: *quick, points: *points, outDir: *outDir}

	known := map[string]func() error{
		"table1":   r.table1,
		"table2":   r.table2,
		"fig3":     r.fig3,
		"fig4":     r.fig4,
		"fig5":     r.fig5,
		"fig6":     r.fig6,
		"fig7":     r.fig7,
		"fig8":     r.fig8,
		"fig9":     r.fig9,
		"fig10":    r.fig10,
		"ablation": r.ablation,
		"multigpu": r.multigpu,
	}
	order := []string{"table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation", "multigpu"}

	var toRun []string
	if *expName == "all" {
		toRun = order
	} else {
		for _, name := range strings.Split(*expName, ",") {
			if _, ok := known[name]; !ok {
				fmt.Fprintf(os.Stderr, "hpubench: unknown experiment %q\n", name)
				os.Exit(2)
			}
			toRun = append(toRun, name)
		}
	}
	for _, name := range toRun {
		if err := known[name](); err != nil {
			fmt.Fprintf(os.Stderr, "hpubench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

type runner struct {
	platform hpu.Platform
	logN     int
	quick    bool
	points   bool
	outDir   string
}

// save writes an artifact in the given format, reporting failures to stderr
// without aborting the run.
func (r *runner) save(name string, write func(io.Writer) error) {
	path := filepath.Join(r.outDir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hpubench: %v\n", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "hpubench: writing %s: %v\n", path, err)
	}
}

func (r *runner) header(id, title string) {
	fmt.Printf("\n=== %s: %s ===\n\n", strings.ToUpper(id), title)
}

func (r *runner) printTable(t exp.Table) {
	r.header(t.ID, t.Title)
	fmt.Print(ascii.RenderTable(t.Columns, t.Rows))
	for _, n := range t.Notes {
		fmt.Printf("note: %s\n", n)
	}
	if r.outDir != "" {
		r.save(t.ID+".csv", func(w io.Writer) error { return export.WriteTableCSV(w, t) })
		r.save(t.ID+".json", func(w io.Writer) error { return export.WriteTableJSON(w, t) })
	}
}

func (r *runner) printFigure(f exp.Figure) {
	r.header(f.ID, f.Title)
	names := make([]string, len(f.Series))
	pts := make([][]stats.Point, len(f.Series))
	for i, s := range f.Series {
		names[i] = s.Name
		pts[i] = s.Points
	}
	ch := ascii.DefaultChart()
	ch.LogX = f.LogX
	fmt.Print(ch.RenderSeries(names, pts))
	fmt.Printf("x: %s    y: %s\n", f.XLabel, f.YLabel)
	for _, n := range f.Notes {
		fmt.Printf("note: %s\n", n)
	}
	if r.points {
		for _, s := range f.Series {
			fmt.Printf("\n# %s\n", s.Name)
			for _, p := range s.Points {
				fmt.Printf("%g\t%g\n", p.X, p.Y)
			}
		}
	}
	if r.outDir != "" {
		r.save(f.ID+".csv", func(w io.Writer) error { return export.WriteFigureCSV(w, f) })
		r.save(f.ID+".json", func(w io.Writer) error { return export.WriteFigureJSON(w, f) })
	}
}

// size returns the figure input exponent honoring -logn and -quick.
func (r *runner) size(def int) int {
	n := def
	if r.logN > 0 {
		n = r.logN
	}
	if r.quick && n > 18 {
		n = 18
	}
	return n
}

// sweepSizes trims a size list under -quick.
func (r *runner) sweepSizes(sizes []int) []int {
	if !r.quick {
		return sizes
	}
	var out []int
	for _, s := range sizes {
		if s <= 18 {
			out = append(out, s)
		}
	}
	return out
}

func (r *runner) table1() error {
	r.printTable(exp.Table1())
	return nil
}

func (r *runner) table2() error {
	t, err := exp.Table2()
	if err != nil {
		return err
	}
	r.printTable(t)
	return nil
}

func (r *runner) fig3() error {
	cfg := exp.DefaultFig3Config()
	cfg.Platform = r.platform
	cfg.LogN = r.size(cfg.LogN)
	fig, err := exp.Fig3(cfg)
	if err != nil {
		return err
	}
	r.printFigure(fig)
	return nil
}

func (r *runner) fig4() error {
	cfg := exp.DefaultFig3Config()
	cfg.Platform = r.platform
	cfg.LogN = r.size(cfg.LogN)
	t, err := exp.Fig4(cfg)
	if err != nil {
		return err
	}
	r.printTable(t)
	return nil
}

func (r *runner) fig5() error {
	fig, err := exp.Fig5(exp.DefaultFig5Config())
	if err != nil {
		return err
	}
	r.printFigure(fig)
	return nil
}

func (r *runner) fig6() error {
	fig, err := exp.Fig6(exp.DefaultFig6Config())
	if err != nil {
		return err
	}
	r.printFigure(fig)
	return nil
}

func (r *runner) fig7() error {
	cfg := exp.DefaultFig7Config()
	cfg.Platform = r.platform
	cfg.LogN = r.size(cfg.LogN)
	fig, err := exp.Fig7(cfg)
	if err != nil {
		return err
	}
	r.printFigure(fig)
	return nil
}

func (r *runner) sweepConfig() exp.SweepConfig {
	cfg := exp.DefaultSweepConfig(r.platform)
	cfg.LogNs = r.sweepSizes(cfg.LogNs)
	return cfg
}

func (r *runner) fig8() error {
	// The paper shows Fig 8 for both platforms side by side.
	for _, pl := range hpu.Platforms() {
		cfg := exp.DefaultSweepConfig(pl)
		cfg.LogNs = r.sweepSizes(cfg.LogNs)
		fig, err := exp.Fig8(cfg)
		if err != nil {
			return err
		}
		r.printFigure(fig)
	}
	return nil
}

func (r *runner) fig9() error {
	cfg := exp.DefaultFig9Config()
	cfg.LogNs = r.sweepSizes(cfg.LogNs)
	times, speedups, err := exp.Fig9(cfg)
	if err != nil {
		return err
	}
	times.LogX = true
	r.printFigure(times)
	r.printFigure(speedups)
	return nil
}

func (r *runner) ablation() error {
	cfg := exp.DefaultAblationConfig()
	cfg.Platform = r.platform
	cfg.LogN = r.size(cfg.LogN)
	t, err := exp.Ablation(cfg)
	if err != nil {
		return err
	}
	r.printTable(t)
	return nil
}

func (r *runner) multigpu() error {
	cfg := exp.DefaultMultiGPUConfig()
	cfg.Platform = r.platform
	cfg.LogNs = r.sweepSizes(cfg.LogNs)
	fig, err := exp.MultiGPU(cfg)
	if err != nil {
		return err
	}
	r.printFigure(fig)
	return nil
}

func (r *runner) fig10() error {
	alphaFig, levelFig, err := exp.Fig10(r.sweepConfig())
	if err != nil {
		return err
	}
	r.printFigure(alphaFig)
	r.printFigure(levelFig)
	return nil
}
