package hybriddc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	hybriddc "repro"
)

// TestConstructorErrorTaxonomy asserts that every public constructor and
// executor wraps one of the package's sentinel errors, so callers can
// classify any failure with errors.Is without matching message strings.
func TestConstructorErrorTaxonomy(t *testing.T) {
	notPow2 := []int32{1, 2, 3}
	mach := hybriddc.Machine{P: 4, G: 64, Gamma: 0.1}

	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"NewMergesort/non-power-of-two", func() error {
			_, err := hybriddc.NewMergesort(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewMergesortAny/too-short", func() error {
			_, err := hybriddc.NewMergesortAny([]int32{1})
			return err
		}, hybriddc.ErrBadShape},
		{"NewParallelMergesort/non-power-of-two", func() error {
			_, err := hybriddc.NewParallelMergesort(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewSum/non-power-of-two", func() error {
			_, err := hybriddc.NewSum(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewScan/non-power-of-two", func() error {
			_, err := hybriddc.NewScan(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewMaxSubarray/non-power-of-two", func() error {
			_, err := hybriddc.NewMaxSubarray(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewFFT/non-power-of-two", func() error {
			_, err := hybriddc.NewFFT(make([]complex128, 3))
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewKaratsuba/mismatched-operands", func() error {
			_, err := hybriddc.NewKaratsuba([]int32{1, 2}, []int32{1, 2, 3, 4})
			return err
		}, hybriddc.ErrBadShape},
		{"NewMatMul/depth-out-of-range", func() error {
			_, err := hybriddc.NewMatMul(make([]float64, 16), make([]float64, 16), 4, 10)
			return err
		}, hybriddc.ErrBadShape},
		{"NewStrassen/depth-out-of-range", func() error {
			_, err := hybriddc.NewStrassen(make([]float64, 16), make([]float64, 16), 4, 10)
			return err
		}, hybriddc.ErrBadShape},
		{"NewPolyModel/bad-recurrence", func() error {
			_, err := hybriddc.NewPolyModel(1, 2, 1024, mach)
			return err
		}, hybriddc.ErrBadParam},
		{"NewNumericModel/no-levels", func() error {
			_, err := hybriddc.NewNumericModel(2, 2, 0, func(float64) float64 { return 1 }, 1, mach)
			return err
		}, hybriddc.ErrBadParam},
		{"NewSim/zero-platform", func() error {
			_, err := hybriddc.NewSim(hybriddc.Platform{})
			return err
		}, hybriddc.ErrBadParam},
		{"NewMultiSim/no-devices", func() error {
			_, err := hybriddc.NewMultiSim(hybriddc.HPU1(), 0)
			return err
		}, hybriddc.ErrBadParam},
		{"NewNative/negative-lanes", func() error {
			_, err := hybriddc.NewNative(hybriddc.NativeConfig{DeviceLanes: -1})
			return err
		}, hybriddc.ErrBadParam},
		{"NewServer/nil-backend", func() error {
			_, err := hybriddc.NewServer(nil)
			return err
		}, hybriddc.ErrBadParam},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("constructor accepted invalid input")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %q does not unwrap to the sentinel %q", err, tc.want)
			}
		})
	}
}

// TestExecutorErrorTaxonomy covers the executors' parameter, capability, and
// lifecycle sentinels through the public facade.
func TestExecutorErrorTaxonomy(t *testing.T) {
	sorter := func(t *testing.T) hybriddc.GPUAlg {
		s, err := hybriddc.NewMergesort(make([]int32, 64))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ctx := context.Background()

	t.Run("bad-alpha", func(t *testing.T) {
		be := hybriddc.MustSim(hybriddc.HPU1())
		if _, err := hybriddc.RunAdvancedHybridCtx(ctx, be, sorter(t), 2, 3); !errors.Is(err, hybriddc.ErrBadAlpha) {
			t.Errorf("error %v does not unwrap to ErrBadAlpha", err)
		}
	})
	t.Run("bad-level", func(t *testing.T) {
		be := hybriddc.MustSim(hybriddc.HPU1())
		if _, err := hybriddc.RunAdvancedHybridCtx(ctx, be, sorter(t), 0.5, -1); !errors.Is(err, hybriddc.ErrBadLevel) {
			t.Errorf("advanced y=-1: error %v does not unwrap to ErrBadLevel", err)
		}
		if _, err := hybriddc.RunBasicHybridCtx(ctx, be, sorter(t), -1); !errors.Is(err, hybriddc.ErrBadLevel) {
			t.Errorf("basic crossover=-1: error %v does not unwrap to ErrBadLevel", err)
		}
	})
	t.Run("no-gpu", func(t *testing.T) {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 1}) // no device lanes
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		if _, err := hybriddc.RunGPUOnlyCtx(ctx, be, sorter(t)); !errors.Is(err, hybriddc.ErrNoGPU) {
			t.Errorf("error %v does not unwrap to ErrNoGPU", err)
		}
	})
	t.Run("canceled", func(t *testing.T) {
		be := hybriddc.MustSim(hybriddc.HPU1())
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		rep, err := hybriddc.RunSequentialCtx(cctx, be, sorter(t))
		if !errors.Is(err, hybriddc.ErrCanceled) {
			t.Errorf("error %v does not unwrap to ErrCanceled", err)
		}
		if !rep.Partial {
			t.Error("canceled run's Report not marked Partial")
		}
	})
	t.Run("backend-closed", func(t *testing.T) {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := be.Close(); err != nil {
			t.Fatal(err)
		}
		if err := be.Close(); !errors.Is(err, hybriddc.ErrBackendClosed) {
			t.Errorf("double Close: error %v does not unwrap to ErrBackendClosed", err)
		}
		if _, err := hybriddc.RunSequentialCtx(ctx, be, sorter(t)); !errors.Is(err, hybriddc.ErrBackendClosed) {
			t.Errorf("run on closed backend: error %v does not unwrap to ErrBackendClosed", err)
		}
	})
	t.Run("server-lifecycle", func(t *testing.T) {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		srv, err := hybriddc.NewServer(be, hybriddc.WithQueueDepth(1), hybriddc.WithMaxInFlight(1))
		if err != nil {
			t.Fatal(err)
		}
		gate := make(chan struct{})
		blocker := &gatedJob{gate: gate}
		h1, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: blocker})
		if err != nil {
			t.Fatal(err)
		}
		// Wait for the blocker to occupy the single slot, then fill the
		// one-deep queue.
		deadline := time.Now().Add(2 * time.Second)
		for srv.Stats().InFlight != 1 {
			if time.Now().After(deadline) {
				t.Fatal("blocker never dispatched")
			}
			time.Sleep(time.Millisecond)
		}
		h2, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{}}); !errors.Is(err, hybriddc.ErrQueueFull) {
			t.Errorf("overflow submit: error %v does not unwrap to ErrQueueFull", err)
		}
		close(gate)
		for _, h := range []*hybriddc.JobHandle{h1, h2} {
			if _, err := h.Report(); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{}}); !errors.Is(err, hybriddc.ErrServerClosed) {
			t.Errorf("submit after Close: error %v does not unwrap to ErrServerClosed", err)
		}
	})
}

// gatedJob is a minimal two-leaf Alg whose base tasks optionally block on a
// channel, used to pin the server's in-flight slot.
type gatedJob struct{ gate chan struct{} }

func (g *gatedJob) Name() string { return "gated" }
func (g *gatedJob) Arity() int   { return 2 }
func (g *gatedJob) Shrink() int  { return 2 }
func (g *gatedJob) N() int       { return 2 }
func (g *gatedJob) Levels() int  { return 1 }

func (g *gatedJob) DivideBatch(level, lo, hi int) hybriddc.Batch { return hybriddc.Batch{} }
func (g *gatedJob) BaseBatch(lo, hi int) hybriddc.Batch {
	return hybriddc.Batch{Tasks: hi - lo, Cost: hybriddc.Cost{Ops: 1}, Run: func(int) {
		if g.gate != nil {
			<-g.gate
		}
	}}
}
func (g *gatedJob) CombineBatch(level, lo, hi int) hybriddc.Batch { return hybriddc.Batch{} }
