package hybriddc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	hybriddc "repro"
	"repro/internal/workload"
)

// TestConstructorErrorTaxonomy asserts that every public constructor and
// executor wraps one of the package's sentinel errors, so callers can
// classify any failure with errors.Is without matching message strings.
func TestConstructorErrorTaxonomy(t *testing.T) {
	notPow2 := []int32{1, 2, 3}
	mach := hybriddc.Machine{P: 4, G: 64, Gamma: 0.1}

	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"NewMergesort/non-power-of-two", func() error {
			_, err := hybriddc.NewMergesort(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewMergesortAny/too-short", func() error {
			_, err := hybriddc.NewMergesortAny([]int32{1})
			return err
		}, hybriddc.ErrBadShape},
		{"NewParallelMergesort/non-power-of-two", func() error {
			_, err := hybriddc.NewParallelMergesort(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewSum/non-power-of-two", func() error {
			_, err := hybriddc.NewSum(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewScan/non-power-of-two", func() error {
			_, err := hybriddc.NewScan(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewMaxSubarray/non-power-of-two", func() error {
			_, err := hybriddc.NewMaxSubarray(notPow2)
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewFFT/non-power-of-two", func() error {
			_, err := hybriddc.NewFFT(make([]complex128, 3))
			return err
		}, hybriddc.ErrNotPowerOfTwo},
		{"NewKaratsuba/mismatched-operands", func() error {
			_, err := hybriddc.NewKaratsuba([]int32{1, 2}, []int32{1, 2, 3, 4})
			return err
		}, hybriddc.ErrBadShape},
		{"NewMatMul/depth-out-of-range", func() error {
			_, err := hybriddc.NewMatMul(make([]float64, 16), make([]float64, 16), 4, 10)
			return err
		}, hybriddc.ErrBadShape},
		{"NewStrassen/depth-out-of-range", func() error {
			_, err := hybriddc.NewStrassen(make([]float64, 16), make([]float64, 16), 4, 10)
			return err
		}, hybriddc.ErrBadShape},
		{"NewPolyModel/bad-recurrence", func() error {
			_, err := hybriddc.NewPolyModel(1, 2, 1024, mach)
			return err
		}, hybriddc.ErrBadParam},
		{"NewNumericModel/no-levels", func() error {
			_, err := hybriddc.NewNumericModel(2, 2, 0, func(float64) float64 { return 1 }, 1, mach)
			return err
		}, hybriddc.ErrBadParam},
		{"NewSim/zero-platform", func() error {
			_, err := hybriddc.NewSim(hybriddc.Platform{})
			return err
		}, hybriddc.ErrBadParam},
		{"NewMultiSim/no-devices", func() error {
			_, err := hybriddc.NewMultiSim(hybriddc.HPU1(), 0)
			return err
		}, hybriddc.ErrBadParam},
		{"NewNative/negative-lanes", func() error {
			_, err := hybriddc.NewNative(hybriddc.NativeConfig{DeviceLanes: -1})
			return err
		}, hybriddc.ErrBadParam},
		{"NewServer/nil-backend", func() error {
			_, err := hybriddc.NewServer(nil)
			return err
		}, hybriddc.ErrBadParam},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("constructor accepted invalid input")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %q does not unwrap to the sentinel %q", err, tc.want)
			}
		})
	}
}

// TestExecutorErrorTaxonomy covers the executors' parameter, capability, and
// lifecycle sentinels through the public facade.
func TestExecutorErrorTaxonomy(t *testing.T) {
	sorter := func(t *testing.T) hybriddc.GPUAlg {
		s, err := hybriddc.NewMergesort(make([]int32, 64))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ctx := context.Background()

	t.Run("bad-alpha", func(t *testing.T) {
		be := hybriddc.MustSim(hybriddc.HPU1())
		if _, err := hybriddc.RunAdvancedHybridCtx(ctx, be, sorter(t), 2, 3); !errors.Is(err, hybriddc.ErrBadAlpha) {
			t.Errorf("error %v does not unwrap to ErrBadAlpha", err)
		}
	})
	t.Run("bad-level", func(t *testing.T) {
		be := hybriddc.MustSim(hybriddc.HPU1())
		if _, err := hybriddc.RunAdvancedHybridCtx(ctx, be, sorter(t), 0.5, -1); !errors.Is(err, hybriddc.ErrBadLevel) {
			t.Errorf("advanced y=-1: error %v does not unwrap to ErrBadLevel", err)
		}
		if _, err := hybriddc.RunBasicHybridCtx(ctx, be, sorter(t), -1); !errors.Is(err, hybriddc.ErrBadLevel) {
			t.Errorf("basic crossover=-1: error %v does not unwrap to ErrBadLevel", err)
		}
	})
	t.Run("no-gpu", func(t *testing.T) {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 1}) // no device lanes
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		if _, err := hybriddc.RunGPUOnlyCtx(ctx, be, sorter(t)); !errors.Is(err, hybriddc.ErrNoGPU) {
			t.Errorf("error %v does not unwrap to ErrNoGPU", err)
		}
	})
	t.Run("canceled", func(t *testing.T) {
		be := hybriddc.MustSim(hybriddc.HPU1())
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		rep, err := hybriddc.RunSequentialCtx(cctx, be, sorter(t))
		if !errors.Is(err, hybriddc.ErrCanceled) {
			t.Errorf("error %v does not unwrap to ErrCanceled", err)
		}
		if !rep.Partial {
			t.Error("canceled run's Report not marked Partial")
		}
	})
	t.Run("backend-closed", func(t *testing.T) {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := be.Close(); err != nil {
			t.Fatal(err)
		}
		if err := be.Close(); !errors.Is(err, hybriddc.ErrBackendClosed) {
			t.Errorf("double Close: error %v does not unwrap to ErrBackendClosed", err)
		}
		if _, err := hybriddc.RunSequentialCtx(ctx, be, sorter(t)); !errors.Is(err, hybriddc.ErrBackendClosed) {
			t.Errorf("run on closed backend: error %v does not unwrap to ErrBackendClosed", err)
		}
	})
	t.Run("server-lifecycle", func(t *testing.T) {
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer be.Close()
		srv, err := hybriddc.NewServer(be, hybriddc.WithQueueDepth(1), hybriddc.WithMaxInFlight(1))
		if err != nil {
			t.Fatal(err)
		}
		gate := make(chan struct{})
		blocker := &gatedJob{gate: gate}
		h1, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: blocker})
		if err != nil {
			t.Fatal(err)
		}
		// Wait for the blocker to occupy the single slot, then fill the
		// one-deep queue.
		deadline := time.Now().Add(2 * time.Second)
		for srv.Stats().InFlight != 1 {
			if time.Now().After(deadline) {
				t.Fatal("blocker never dispatched")
			}
			time.Sleep(time.Millisecond)
		}
		h2, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{}}); !errors.Is(err, hybriddc.ErrQueueFull) {
			t.Errorf("overflow submit: error %v does not unwrap to ErrQueueFull", err)
		}
		close(gate)
		for _, h := range []*hybriddc.JobHandle{h1, h2} {
			if _, err := h.Report(); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{}}); !errors.Is(err, hybriddc.ErrServerClosed) {
			t.Errorf("submit after Close: error %v does not unwrap to ErrServerClosed", err)
		}
	})
}

// TestReliabilityErrorTaxonomy drives the fault-injection and reliability
// sentinels through the public facade and asserts the full errors.Is matrix:
// each wrapped chain (retry-exhausted, failed-fallback, breaker shed) must
// match every sentinel a caller could reasonably classify on.
func TestReliabilityErrorTaxonomy(t *testing.T) {
	ctx := context.Background()
	newServer := func(t *testing.T, rate float64, opts ...hybriddc.ServerOption) *hybriddc.Server {
		t.Helper()
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 2, DeviceLanes: 4})
		if err != nil {
			t.Fatal(err)
		}
		in, err := hybriddc.NewFaultInjector(hybriddc.FaultsConfig{Seed: 1, KernelErrorRate: rate})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := hybriddc.NewServer(be, append([]hybriddc.ServerOption{hybriddc.WithServerFaults(in)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			be.Close()
		})
		return srv
	}
	sortSpec := func(t *testing.T) hybriddc.JobSpec {
		t.Helper()
		data := workload.Uniform(1<<7, 9)
		alg, err := hybriddc.NewMergesort(data)
		if err != nil {
			t.Fatal(err)
		}
		return hybriddc.JobSpec{
			Alg:      alg,
			Strategy: hybriddc.JobGPUOnly,
			Fresh: func() (hybriddc.Alg, error) {
				a, err := hybriddc.NewMergesort(data)
				return a, err
			},
		}
	}

	t.Run("device-fault-surfaces", func(t *testing.T) {
		srv := newServer(t, 1)
		spec := sortSpec(t)
		spec.Fresh = nil
		h, err := srv.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := h.Report()
		if !errors.Is(err, hybriddc.ErrDeviceFault) {
			t.Errorf("injected fault %v does not unwrap to ErrDeviceFault", err)
		}
		if !rep.Partial {
			t.Error("faulted run's Report not marked Partial")
		}
	})
	t.Run("retries-exhausted-matches-both", func(t *testing.T) {
		srv := newServer(t, 1)
		h, err := srv.Submit(ctx, sortSpec(t), hybriddc.WithRetry(2, 0))
		if err != nil {
			t.Fatal(err)
		}
		_, err = h.Report()
		for _, want := range []error{hybriddc.ErrRetriesExhausted, hybriddc.ErrDeviceFault} {
			if !errors.Is(err, want) {
				t.Errorf("exhausted-retries error %v does not unwrap to %v", err, want)
			}
		}
		if errors.Is(err, hybriddc.ErrDegraded) {
			t.Errorf("exhausted-retries error %v must not match ErrDegraded", err)
		}
	})
	t.Run("fallback-recovers", func(t *testing.T) {
		srv := newServer(t, 1)
		h, err := srv.Submit(ctx, sortSpec(t), hybriddc.WithRetry(1, 0), hybriddc.WithFallback(hybriddc.CPUOnly))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Report(); err != nil {
			t.Fatalf("fallback-wrapped job failed: %v", err)
		}
		if !h.FellBack() {
			t.Error("FellBack() = false after an all-faulty device path")
		}
	})
	t.Run("breaker-degraded", func(t *testing.T) {
		srv := newServer(t, 1, hybriddc.WithBreaker(1, time.Minute))
		spec := sortSpec(t)
		spec.Fresh = nil
		h, err := srv.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Report(); !errors.Is(err, hybriddc.ErrDeviceFault) {
			t.Fatalf("tripping job: %v, want ErrDeviceFault", err)
		}
		_, err = srv.Submit(ctx, spec)
		if !errors.Is(err, hybriddc.ErrDegraded) {
			t.Errorf("shed submit error %v does not unwrap to ErrDegraded", err)
		}
		if errors.Is(err, hybriddc.ErrDeviceFault) {
			t.Errorf("shed submit error %v must not match ErrDeviceFault", err)
		}
	})
	t.Run("policy-validation", func(t *testing.T) {
		srv := newServer(t, 0)
		spec := sortSpec(t)
		spec.Fresh = nil
		if _, err := srv.Submit(ctx, spec, hybriddc.WithRetry(1, 0)); !errors.Is(err, hybriddc.ErrBadParam) {
			t.Errorf("re-executing policy without Fresh: %v, want ErrBadParam", err)
		}
	})
}

// TestHandleWaitDoneContract pins the JobHandle observation semantics:
// a finished job always wins over an expired wait context; a wait-context
// expiry abandons only the wait (the job keeps running and Done stays
// open); and the job's own error — including ErrCanceled from the
// submission context — takes precedence over the wait context's cause.
func TestHandleWaitDoneContract(t *testing.T) {
	ctx := context.Background()
	newSrv := func(t *testing.T, opts ...hybriddc.ServerOption) *hybriddc.Server {
		t.Helper()
		be, err := hybriddc.NewNative(hybriddc.NativeConfig{CPUWorkers: 2, DeviceLanes: 4})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := hybriddc.NewServer(be, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Close()
			be.Close()
		})
		return srv
	}
	waitInFlight := func(t *testing.T, srv *hybriddc.Server) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for srv.Stats().InFlight != 1 {
			if time.Now().After(deadline) {
				t.Fatal("blocker never dispatched")
			}
			time.Sleep(time.Millisecond)
		}
	}

	t.Run("finished-job-beats-expired-wait-ctx", func(t *testing.T) {
		srv := newSrv(t)
		s, err := hybriddc.NewMergesort(workload.Uniform(1<<7, 3))
		if err != nil {
			t.Fatal(err)
		}
		h, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: s})
		if err != nil {
			t.Fatal(err)
		}
		want, wantErr := h.Report() // settles the handle
		expired, cancel := context.WithCancel(ctx)
		cancel()
		rep, err := h.Wait(expired)
		if !errors.Is(err, wantErr) || err != nil {
			t.Errorf("Wait on settled handle with expired ctx: err = %v, want job outcome %v", err, wantErr)
		}
		if rep.Seconds != want.Seconds || rep.Strategy != want.Strategy {
			t.Errorf("Wait on settled handle returned %+v, want the settled Report %+v", rep, want)
		}
	})
	t.Run("wait-expiry-abandons-only-the-wait", func(t *testing.T) {
		srv := newSrv(t, hybriddc.WithMaxInFlight(1))
		gate := make(chan struct{})
		h, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{gate: gate}})
		if err != nil {
			t.Fatal(err)
		}
		waitInFlight(t, srv)
		short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		defer cancel()
		if _, err := h.Wait(short); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("expired wait: err = %v, want the wait context's cause (DeadlineExceeded)", err)
		}
		select {
		case <-h.Done():
			t.Error("Done closed by an abandoned wait; the job should still be running")
		default:
		}
		if err := h.Err(); err != nil {
			t.Errorf("Err() on a still-running job = %v, want nil", err)
		}
		close(gate)
		if _, err := h.Report(); err != nil {
			t.Errorf("job failed after an abandoned wait: %v", err)
		}
		select {
		case <-h.Done():
		default:
			t.Error("Done not closed after settlement")
		}
	})
	t.Run("job-error-precedence-over-wait-ctx", func(t *testing.T) {
		srv := newSrv(t, hybriddc.WithMaxInFlight(1), hybriddc.WithQueueDepth(4))
		gate := make(chan struct{})
		if _, err := srv.Submit(ctx, hybriddc.JobSpec{Alg: &gatedJob{gate: gate}}); err != nil {
			t.Fatal(err)
		}
		waitInFlight(t, srv)
		cctx, cancelJob := context.WithCancel(ctx)
		h, err := srv.Submit(cctx, hybriddc.JobSpec{Alg: &gatedJob{}})
		if err != nil {
			t.Fatal(err)
		}
		cancelJob() // cancel the queued job's submission context
		close(gate) // free the slot: the canceled job settles at dispatch
		<-h.Done()
		expired, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := h.Wait(expired); !errors.Is(err, hybriddc.ErrCanceled) {
			t.Errorf("Wait(expired) on canceled job: err = %v, want the job's ErrCanceled", err)
		}
		if err := h.Err(); !errors.Is(err, hybriddc.ErrCanceled) {
			t.Errorf("Err() after settlement = %v, want ErrCanceled", err)
		}
	})
}

// gatedJob is a minimal two-leaf Alg whose base tasks optionally block on a
// channel, used to pin the server's in-flight slot.
type gatedJob struct{ gate chan struct{} }

func (g *gatedJob) Name() string { return "gated" }
func (g *gatedJob) Arity() int   { return 2 }
func (g *gatedJob) Shrink() int  { return 2 }
func (g *gatedJob) N() int       { return 2 }
func (g *gatedJob) Levels() int  { return 1 }

func (g *gatedJob) DivideBatch(level, lo, hi int) hybriddc.Batch { return hybriddc.Batch{} }
func (g *gatedJob) BaseBatch(lo, hi int) hybriddc.Batch {
	return hybriddc.Batch{Tasks: hi - lo, Cost: hybriddc.Cost{Ops: 1}, Run: func(int) {
		if g.gate != nil {
			<-g.gate
		}
	}}
}
func (g *gatedJob) CombineBatch(level, lo, hi int) hybriddc.Batch { return hybriddc.Batch{} }
