package hybriddc

import (
	"fmt"
	"io"
	"time"

	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/trace"
)

// Context-aware executors. Each checks its context at every level boundary;
// on cancellation it stops within one boundary and returns a partial Report
// together with an error wrapping ErrCanceled. They accept functional
// options (WithCoalesce, WithSplit, WithTrace, ...) instead of the
// deprecated Options/AdvancedParams structs.
var (
	// RunSequentialCtx is RunSequential with cancellation and options.
	RunSequentialCtx = core.RunSequentialCtx
	// RunBreadthFirstCPUCtx is RunBreadthFirstCPU with cancellation and
	// options.
	RunBreadthFirstCPUCtx = core.RunBreadthFirstCPUCtx
	// RunBasicHybridCtx is RunBasicHybrid with cancellation and options.
	RunBasicHybridCtx = core.RunBasicHybridCtx
	// RunAdvancedHybridCtx is RunAdvancedHybrid with cancellation and
	// options; alpha and y are passed directly and the split level comes
	// from WithSplit (default: DefaultSplit).
	RunAdvancedHybridCtx = core.RunAdvancedHybridCtx
	// RunGPUOnlyCtx is RunGPUOnly with cancellation and options.
	RunGPUOnlyCtx = core.RunGPUOnlyCtx
)

// Option configures a single execution or a Server submission.
type Option = core.Option

// WithCoalesce enables the §6.3 coalescing layout transformation around the
// device-resident phase (a no-op for non-Transformable algorithms).
func WithCoalesce() Option { return core.WithCoalesce() }

// WithSplit pins the advanced division's split level instead of deriving it
// with DefaultSplit; a negative value restores the default.
func WithSplit(s int) Option { return core.WithSplit(s) }

// WithPriority sets the job's scheduling weight for Server.Submit: under
// contention a weight-w job is dispatched roughly w times as often as a
// weight-1 job, and FIFO order is kept among equal weights. Direct executors
// ignore it.
func WithPriority(w int) Option { return core.WithPriority(w) }

// GrainAuto selects the leaf-coarsening grain automatically from the CPU
// parallelism (DESIGN.md §11).
const GrainAuto = core.GrainAuto

// WithGrain sets the leaf-coarsening grain for the run's CPU portion: the
// bottom ⌊log_a(n)⌋ breadth-first levels collapse into one cache-friendly
// depth-first chunk per subtree (at most n leaves each). 0 or 1 disables
// coarsening (the default); GrainAuto picks the largest grain that keeps
// all CPU workers busy. Results are bit-identical for any grain.
func WithGrain(n int) Option { return core.WithGrain(n) }

// WithTrace records the execution's timeline and, when the run finishes
// (even canceled), writes a one-line summary, an ASCII Gantt chart, and
// per-unit utilization to w.
func WithTrace(w io.Writer) Option {
	return func(c *core.RunConfig) {
		rec := trace.NewRecorder()
		core.WithBackendWrapper(func(be core.Backend) core.Backend {
			return trace.Wrap(be, rec)
		})(c)
		core.WithObserver(func(r *core.Report) {
			state := ""
			if r.Partial {
				state = " (partial: canceled)"
			}
			fmt.Fprintf(w, "%s %s: %.6fs%s\n", r.Algorithm, r.Strategy, r.Seconds, state)
			io.WriteString(w, rec.Gantt(72))
			for unit, u := range rec.Utilization() {
				fmt.Fprintf(w, "%5s utilization: %.1f%%\n", unit, 100*u)
			}
		})(c)
	}
}

// Serving layer: a multi-job scheduler over a backend pool.
type (
	// Server multiplexes concurrent D&C jobs over a pool of one or more
	// backends with bounded admission (ErrQueueFull), per-job context
	// cancellation, weighted-fair dispatch, and load-aware placement.
	// AddBackend and DrainBackend change the pool at runtime. See
	// internal/serve for the full semantics.
	Server = serve.Server
	// ServerOption configures a Server at construction (WithQueueDepth,
	// WithMaxInFlight, WithServerMetrics, WithServerRecorder,
	// WithMaxFusedJobs, WithBatchWindow, WithFusedBytesCap).
	ServerOption = serve.Option
	// ServerConfig is the resolved form of the ServerOptions.
	//
	// Deprecated: functional options are the only documented construction
	// path — pass ServerOptions to NewServer. ServerConfig remains solely
	// so existing NewServerFromConfig callers keep compiling; it gains no
	// new fields' documentation and may be unexported in a future major
	// version. See the README's "Migrating to functional options" note.
	ServerConfig = serve.Config
	// JobSpec describes one job for Server.Submit. Jobs carrying a
	// re-executing reliability policy (WithRetry, WithHedge, WithFallback)
	// must also set Fresh, the factory re-execution starts from.
	JobSpec = serve.Job
	// JobHandle tracks a submitted job. Report (or Wait, which also honors
	// a caller context) blocks for the result; Done returns a channel
	// closed at settlement and Err peeks at the outcome without blocking,
	// so handles compose with select loops. Wait and Err surface the error
	// taxonomy sentinels: ErrCanceled for cancellations and expired
	// deadlines, ErrDeviceFault for device-path failures, ErrRetriesExhausted
	// once a retry policy is spent, ErrDegraded when the circuit breaker
	// shed the job, ErrQueueFull/ErrServerClosed from admission — all
	// classifiable with errors.Is through every wrapping layer. After a
	// retry, hedge or fallback produced the result, ResultAlg returns the
	// instance that holds it (Attempts, HedgeWon and FellBack report how it
	// got there).
	JobHandle = serve.Handle
	// ServerStats is a Server.Stats snapshot of the aggregate counters.
	ServerStats = serve.Stats
	// JobStrategy selects a job's executor.
	JobStrategy = serve.Strategy
	// PlacementPolicy selects how a pooled Server places the next job
	// across its devices (WithPlacement).
	PlacementPolicy = serve.Placement
	// DeviceStats is one device's slice of a ServerStats snapshot.
	DeviceStats = serve.DeviceStats
)

// Placement policies for WithPlacement.
const (
	// PlaceModeledWork scores each device by the modeled sequential cost
	// of its backlog and places on the lightest — the default.
	PlaceModeledWork = serve.PlaceModeledWork
	// PlaceJSQ is join-shortest-queue: occupancy alone.
	PlaceJSQ = serve.PlaceJSQ
)

// Job strategies.
const (
	// JobSequential runs the single-core recursive baseline.
	JobSequential = serve.Sequential
	// JobBreadthFirstCPU runs level-parallel on the CPU only.
	JobBreadthFirstCPU = serve.BreadthFirstCPU
	// JobBasicHybrid runs the §5.1 basic work division.
	JobBasicHybrid = serve.BasicHybrid
	// JobAdvancedHybrid runs the §5.2 advanced work division.
	JobAdvancedHybrid = serve.AdvancedHybrid
	// JobGPUOnly runs everything on the device.
	JobGPUOnly = serve.GPUOnly
	// JobAuto lets the server's online calibrator price every strategy
	// against the placed device's learned cost model at dispatch and run the
	// cheapest one; Report.AutoStrategy records the pick. Until the
	// calibrator has enough observations it falls back to the paper's
	// analytic §5 model (DESIGN.md §16).
	JobAuto = serve.Auto
)

// NewServer starts a job server over the backend; call Close to stop it.
// The defaults (queue depth 64, four jobs in flight, no observability) are
// adjusted with ServerOptions:
//
//	reg := hybriddc.NewMetrics()
//	srv, err := hybriddc.NewServer(be,
//	    hybriddc.WithQueueDepth(256),
//	    hybriddc.WithServerMetrics(reg))
func NewServer(be Backend, opts ...ServerOption) (*Server, error) {
	return serve.New(be, opts...)
}

// NewServerPool starts a job server sharded across a pool of backends —
// one dispatch queue, breaker, and fault domain per device — with
// load-aware placement (WithPlacement) on top of the same weighted-fair
// global schedule. The pool changes at runtime through Server.AddBackend
// and Server.DrainBackend:
//
//	srv, err := hybriddc.NewServerPool([]hybriddc.Backend{be0, be1},
//	    hybriddc.WithBreaker(3, time.Second),
//	    hybriddc.WithAutoDrain())
func NewServerPool(pool []Backend, opts ...ServerOption) (*Server, error) {
	return serve.NewPool(pool, opts...)
}

// NewServerFromConfig starts a job server from a resolved ServerConfig.
//
// Deprecated: use NewServer with ServerOptions — the only documented
// construction path. This wrapper remains for source compatibility only:
//
//	// before
//	srv, err := hybriddc.NewServerFromConfig(hybriddc.ServerConfig{
//	    Backend: be, QueueDepth: 256, Metrics: reg,
//	})
//	// after
//	srv, err := hybriddc.NewServer(be,
//	    hybriddc.WithQueueDepth(256),
//	    hybriddc.WithServerMetrics(reg))
func NewServerFromConfig(cfg ServerConfig) (*Server, error) { return serve.NewFromConfig(cfg) }

// WithQueueDepth bounds the server's admission queue: Submit rejects with
// ErrQueueFull once n jobs are waiting.
func WithQueueDepth(n int) ServerOption { return serve.WithQueueDepth(n) }

// WithMaxInFlight bounds how many jobs the server executes concurrently
// (clamped to 1 on non-autonomous backends such as the simulator).
func WithMaxInFlight(n int) ServerOption { return serve.WithMaxInFlight(n) }

// WithServerMetrics directs the server's operational metrics — admission
// and outcome counters, queue-depth and in-flight gauges, per-priority wait
// and turnaround histograms — into the registry, and forwards the registry
// to every job's executor. One scrape therefore sees both layers.
func WithServerMetrics(reg *Metrics) ServerOption { return serve.WithMetrics(reg) }

// WithServerRecorder records per-job spans into rec: one "queue" and one
// "job" span per job plus every batch and transfer, all stamped with the
// job ID. Combine with NewTraceRecorderLimit for bounded memory.
func WithServerRecorder(rec *TraceRecorder) ServerOption { return serve.WithRecorder(rec) }

// WithMaxFusedJobs enables job fusion: when the dispatcher starts a GPUOnly
// job whose algorithm kind matches other queued GPUOnly jobs, up to n of
// them execute as one fused breadth-first run — one kernel launch per
// recursion level across all members, pipelined transfers — while each
// JobHandle still settles with its own Report. n < 2 (the default) disables
// fusion. Per-job results are bit-identical to unfused runs.
func WithMaxFusedJobs(n int) ServerOption { return serve.WithMaxFusedJobs(n) }

// WithBatchWindow lets a dispatched fusable job linger up to d for
// same-kind companions to arrive when fewer than MaxFusedJobs are queued,
// trading a bounded latency hit for a larger fused launch. The default 0
// fuses only with jobs already waiting.
func WithBatchWindow(d time.Duration) ServerOption { return serve.WithBatchWindow(d) }

// WithFusedBytesCap bounds the summed device-transfer sizes one fused
// execution may carry; 0 (the default) is unbounded.
func WithFusedBytesCap(b int64) ServerOption { return serve.WithFusedBytesCap(b) }

// WithBreaker enables the server's per-backend circuit breaker: after
// threshold consecutive device-fault attempts, GPU-bound admission is shed
// with ErrDegraded (jobs carrying WithFallback(CPUOnly) run on the CPU path
// instead) until a post-cooldown probe job succeeds. DESIGN.md §12 has the
// state machine.
func WithBreaker(threshold int, cooldown time.Duration) ServerOption {
	return serve.WithBreaker(threshold, cooldown)
}

// WithServerFaults wraps every job attempt's backend with the fault
// injector — the chaos-testing hook exercised by `hpuserve --chaos`.
func WithServerFaults(in *FaultInjector) ServerOption { return serve.WithFaults(in) }

// WithDeviceFaults overrides WithServerFaults for one pool device, so a
// chaos run can make a single pool member flaky while the rest stay
// healthy — the setup that exercises per-device breaker isolation.
func WithDeviceFaults(dev int, in *FaultInjector) ServerOption {
	return serve.WithDeviceFaults(dev, in)
}

// WithPlacement selects the pool placement policy: PlaceModeledWork (the
// default) or PlaceJSQ. With a single backend the policy is moot.
func WithPlacement(p PlacementPolicy) ServerOption { return serve.WithPlacement(p) }

// WithAutoDrain lets a device whose circuit breaker trips drain itself out
// of the pool: queued jobs rebalance to healthier devices, in-flight work
// finishes, and the device is removed. The last active device never
// auto-drains. Off by default; meaningful only with WithBreaker.
func WithAutoDrain() ServerOption { return serve.WithAutoDrain() }

// AutoTuner is the online calibrator behind JobAuto: per-device,
// per-(algorithm, size-class) cost rates refit from the measured timings of
// every clean job attempt. Persist it with MarshalJSON at shutdown and
// restore with LoadAutoTuner + WithAutoTuner so a restarted server skips
// the cold start. DESIGN.md §16.
type AutoTuner = autotune.Tuner

// NewAutoTuner returns a cold-start calibrator (Decide falls back to the
// analytic §5 model until it has autotune.DefaultMinObs observations per
// algorithm and size class).
func NewAutoTuner() *AutoTuner { return autotune.NewTuner() }

// LoadAutoTuner restores a calibrator persisted with AutoTuner.MarshalJSON.
func LoadAutoTuner(data []byte) (*AutoTuner, error) { return autotune.LoadTuner(data) }

// WithAutoTuner installs a pre-built (typically persisted-and-restored)
// calibrator for JobAuto, so a restarted server keeps its learned cost
// model instead of re-deriving it from live traffic.
func WithAutoTuner(t *AutoTuner) ServerOption { return serve.WithAutoTuner(t) }

// WithSplitOversized lets an AdvancedHybrid job whose whole-instance
// transfer size is at least bytes stripe across an idle multi-GPU device's
// internal GPUs via RunMultiGPUCtx. 0, the default, never splits.
func WithSplitOversized(bytes int64) ServerOption { return serve.WithSplitOversized(bytes) }

// Per-job reliability policies, accepted (like any Option) by JobSpec.Opts
// or Server.Submit. All re-executing policies require JobSpec.Fresh.
var (
	// WithRetry re-executes a device-faulted job up to max more times on
	// fresh instances, pausing backoff between attempts; exhaustion fails
	// the job with an error matching both ErrRetriesExhausted and
	// ErrDeviceFault.
	WithRetry = serve.WithRetry
	// WithDeadline bounds the job's total execution budget (attempts,
	// hedges and fallbacks included) from dispatch; expiry fails the job
	// with ErrCanceled.
	WithDeadline = serve.WithDeadline
	// WithHedge starts a breadth-first CPU duplicate of a straggling
	// GPU-bound job after the given delay; the first clean result wins and
	// the loser is canceled. Ignored on non-autonomous backends.
	WithHedge = serve.WithHedge
	// WithFallback selects the degradation path: with CPUOnly, a job whose
	// device attempts are spent transparently re-runs breadth-first on the
	// CPU engine with bit-identical results.
	WithFallback = serve.WithFallback
)

// FallbackMode selects a job's degradation path for WithFallback.
type FallbackMode = serve.FallbackMode

// CPUOnly re-runs device-failed jobs on the CPU engine; see WithFallback.
const CPUOnly = serve.CPUOnly

// Circuit breaker states, as reported by ServerStats.BreakerState and the
// serve_breaker_state gauge.
const (
	BreakerClosed   = serve.BreakerClosed
	BreakerHalfOpen = serve.BreakerHalfOpen
	BreakerOpen     = serve.BreakerOpen
)

// Fault injection (chaos testing): deterministic, seeded device failures
// beneath the executors. See internal/faults for the fault taxonomy.
type (
	// FaultsConfig configures a FaultInjector: a seed, per-attempt fault
	// rates by kind, and stall/trigger shaping.
	FaultsConfig = faults.Config
	// FaultInjector hands out per-attempt fault plans; attach it to a
	// Server with WithServerFaults.
	FaultInjector = faults.Injector
	// FaultCounts snapshots what an injector has done (FaultInjector.Counts).
	FaultCounts = faults.Counts
)

// NewFaultInjector validates cfg and returns a deterministic fault
// injector for chaos testing.
func NewFaultInjector(cfg FaultsConfig) (*FaultInjector, error) { return faults.New(cfg) }

// TraceRecorder collects execution spans (see ServerConfig.Trace and the
// internal/trace package).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns an empty span recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
