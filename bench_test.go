// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablation benches for the design choices called out in DESIGN.md §6.
// Each benchmark runs a reduced-size instance of the corresponding
// experiment driver (cmd/hpubench runs them at paper scale) and reports the
// key quantity of the artifact — usually a speedup — as a custom metric.
package hybriddc

import (
	"context"

	"testing"

	"repro/internal/algos/mergesort"
	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/exp"
	"repro/internal/hpu"
	"repro/internal/model"
	"repro/internal/native"
	"repro/internal/sched"
	"repro/internal/workload"
)

// benchLogN keeps benchmark instances moderate; hpubench regenerates the
// full-scale artifacts.
const benchLogN = 16

// BenchmarkTable1Platforms regenerates Table 1 (platform specifications).
func BenchmarkTable1Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := exp.Table1(); len(tab.Rows) != 2 {
			b.Fatal("Table1 malformed")
		}
	}
}

// BenchmarkTable2Estimate regenerates Table 2: the (p, g, γ) estimation on
// HPU1 via the Fig 5/6 procedures.
func BenchmarkTable2Estimate(b *testing.B) {
	var got estimate.Result
	for i := 0; i < b.N; i++ {
		var err error
		got, err = estimate.Platform(hpu.HPU1())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(got.G), "g")
	b.ReportMetric(got.GammaInv, "1/γ")
}

// BenchmarkFig3Model regenerates the Fig 3 closed-form curves (y(α) and GPU
// work share) at the paper's n = 2^24.
func BenchmarkFig3Model(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig3(exp.DefaultFig3Config())
		if err != nil {
			b.Fatal(err)
		}
		_ = fig
		poly, _ := model.NewPoly(2, 2, 1<<24, model.Machine{P: 4, G: 4096, Gamma: 1.0 / 160})
		_, _, frac = poly.Optimum()
	}
	b.ReportMetric(100*frac, "gpu-work-%")
}

// BenchmarkFig5Saturation regenerates the Fig 5 saturation sweep on HPU1.
func BenchmarkFig5Saturation(b *testing.B) {
	cfg := estimate.DefaultSaturationConfig()
	cfg.Step = 64
	var g int
	for i := 0; i < b.N; i++ {
		var err error
		g, _, err = estimate.EstimateG(hpu.HPU1(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g), "g-knee")
}

// BenchmarkFig6ScalarRatio regenerates the Fig 6 single-thread merge ratio.
func BenchmarkFig6ScalarRatio(b *testing.B) {
	var inv float64
	for i := 0; i < b.N; i++ {
		var err error
		inv, _, err = estimate.EstimateGammaInv(hpu.HPU1(), estimate.DefaultGammaConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(inv, "1/γ")
}

// BenchmarkFig7AlphaSweep regenerates a reduced Fig 7: the α × y speedup
// sweep of the advanced hybrid mergesort on HPU1.
func BenchmarkFig7AlphaSweep(b *testing.B) {
	cfg := exp.Fig7Config{
		Platform: hpu.HPU1(),
		LogN:     benchLogN,
		Alphas:   []float64{0.08, 0.16, 0.24},
		Ys:       []int{7, 8, 9},
		Seed:     1,
	}
	var best float64
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, s := range fig.Series {
			for _, p := range s.Points {
				if p.Y > best {
					best = p.Y
				}
			}
		}
	}
	b.ReportMetric(best, "best-speedup")
}

func benchSweep() exp.SweepConfig {
	cfg := exp.DefaultSweepConfig(hpu.HPU1())
	cfg.LogNs = []int{12, 14, benchLogN}
	cfg.AlphaFactors = []float64{0.75, 1.0, 1.25}
	cfg.YOffsets = []int{0, 1}
	return cfg
}

// BenchmarkFig8SpeedupVsN regenerates a reduced Fig 8: best hybrid speedup
// vs input size against the model prediction.
func BenchmarkFig8SpeedupVsN(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		fig, err := exp.Fig8(benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		pts := fig.Series[0].Points
		last = pts[len(pts)-1].Y
	}
	b.ReportMetric(last, "speedup-at-2^16")
}

// BenchmarkFig9ParallelGPU regenerates a reduced Fig 9: the GPU-only
// parallel-merge mergesort against the 1-core baseline.
func BenchmarkFig9ParallelGPU(b *testing.B) {
	cfg := exp.Fig9Config{Platform: hpu.HPU1(), LogNs: []int{benchLogN}, Seed: 1}
	var sortOnly float64
	for i := 0; i < b.N; i++ {
		_, speedups, err := exp.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sortOnly = speedups.Series[0].Points[0].Y
	}
	b.ReportMetric(sortOnly, "sort-only-speedup")
}

// BenchmarkFig10OptimalParams regenerates a reduced Fig 10: best-measured
// (α, y) against the model's predictions.
func BenchmarkFig10OptimalParams(b *testing.B) {
	var obtained, predicted float64
	for i := 0; i < b.N; i++ {
		alphaFig, _, err := exp.Fig10(benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		pts := alphaFig.Series[0].Points
		obtained = pts[len(pts)-1].Y
		predicted = alphaFig.Series[1].Points[len(pts)-1].Y
	}
	b.ReportMetric(obtained, "alpha-obtained")
	b.ReportMetric(predicted, "alpha-predicted")
}

// runHybrid executes one advanced hybrid mergesort on a fresh simulated
// HPU1 and returns (sequential, hybrid) times.
func runHybrid(b *testing.B, in []int32, opts ...core.Option) (float64, float64) {
	b.Helper()
	seqBe := hpu.MustSim(hpu.HPU1())
	seqS, err := mergesort.New(in)
	if err != nil {
		b.Fatal(err)
	}
	seq, err := core.RunSequentialCtx(context.Background(), seqBe, seqS)
	if err != nil {
		b.Fatal(err)
	}

	be := hpu.MustSim(hpu.HPU1())
	s, err := mergesort.New(in)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, 0.17, 9, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return seq.Seconds, rep.Seconds
}

// BenchmarkAblationCoalescing compares the advanced hybrid with and without
// the §6.3 memory-layout transformation.
func BenchmarkAblationCoalescing(b *testing.B) {
	in := workload.Uniform(1<<benchLogN, 1)
	for _, coalesce := range []bool{true, false} {
		name := "off"
		if coalesce {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var seq, hyb float64
			for i := 0; i < b.N; i++ {
				seq, hyb = runHybrid(b, in, coalesceOpts(coalesce)...)
			}
			b.ReportMetric(seq/hyb, "speedup")
		})
	}
}

// BenchmarkAblationStrategies compares every execution strategy on the same
// instance.
func BenchmarkAblationStrategies(b *testing.B) {
	in := workload.Uniform(1<<benchLogN, 2)
	seqBe := hpu.MustSim(hpu.HPU1())
	seqS, _ := mergesort.New(in)
	baselineRep, err := core.RunSequentialCtx(context.Background(), seqBe, seqS)
	if err != nil {
		b.Fatal(err)
	}
	baseline := baselineRep.Seconds

	strategies := []struct {
		name string
		run  func() float64
	}{
		{"bf-cpu", func() float64 {
			be := hpu.MustSim(hpu.HPU1())
			s, _ := mergesort.New(in)
			rep, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s)
			if err != nil {
				b.Fatal(err)
			}
			return rep.Seconds
		}},
		{"basic-hybrid", func() float64 {
			be := hpu.MustSim(hpu.HPU1())
			s, _ := mergesort.New(in)
			rep, err := core.RunBasicHybridCtx(context.Background(), be, s, 10, core.WithCoalesce())
			if err != nil {
				b.Fatal(err)
			}
			return rep.Seconds
		}},
		{"advanced-hybrid", func() float64 {
			be := hpu.MustSim(hpu.HPU1())
			s, _ := mergesort.New(in)
			rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, 0.17, 9, core.WithCoalesce())
			if err != nil {
				b.Fatal(err)
			}
			return rep.Seconds
		}},
		{"gpu-only-parallel", func() float64 {
			be := hpu.MustSim(hpu.HPU1())
			s, _ := mergesort.NewParallel(in)
			rep, err := core.RunGPUOnlyCtx(context.Background(), be, s)
			if err != nil {
				b.Fatal(err)
			}
			return rep.Seconds
		}},
	}
	for _, st := range strategies {
		b.Run(st.name, func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				secs = st.run()
			}
			b.ReportMetric(baseline/secs, "speedup")
		})
	}
}

// BenchmarkAblationDynamicSched compares the paper's static two-transfer
// advanced division against the per-level dynamic (StarPU-style) baseline.
func BenchmarkAblationDynamicSched(b *testing.B) {
	in := workload.Uniform(1<<benchLogN, 3)
	b.Run("static-advanced", func(b *testing.B) {
		var seq, hyb float64
		for i := 0; i < b.N; i++ {
			seq, hyb = runHybrid(b, in, core.WithCoalesce())
		}
		b.ReportMetric(seq/hyb, "speedup")
	})
	b.Run("dynamic-per-level", func(b *testing.B) {
		var speedup float64
		for i := 0; i < b.N; i++ {
			seqBe := hpu.MustSim(hpu.HPU1())
			seqS, _ := mergesort.New(in)
			seqRep, err := core.RunSequentialCtx(context.Background(), seqBe, seqS)
			if err != nil {
				b.Fatal(err)
			}
			seq := seqRep.Seconds
			be := hpu.MustSim(hpu.HPU1())
			s, _ := mergesort.New(in)
			rep, err := sched.RunDynamicHybrid(be, s)
			if err != nil {
				b.Fatal(err)
			}
			speedup = seq / rep.Seconds
		}
		b.ReportMetric(speedup, "speedup")
	})
}

// BenchmarkNativeMergesort measures the real-goroutine backend on this
// machine (wall-clock, CPU only): the library as a multi-core D&C runtime.
func BenchmarkNativeMergesort(b *testing.B) {
	in := workload.Uniform(1<<benchLogN, 4)
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "1-worker", 2: "2-workers", 4: "4-workers"}[workers],
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					be, err := native.New(native.Config{CPUWorkers: workers})
					if err != nil {
						b.Fatal(err)
					}
					s, err := mergesort.New(in)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := core.RunBreadthFirstCPUCtx(context.Background(), be, s); err != nil {
						b.Fatal(err)
					}
					be.Close()
					if !workload.IsSorted(s.Result()) {
						b.Fatal("unsorted")
					}
				}
			})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: events per
// second of the discrete-event engine driving a full hybrid run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	in := workload.Uniform(1<<14, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		be := hpu.MustSim(hpu.HPU1())
		s, _ := mergesort.New(in)
		if _, err := core.RunAdvancedHybridCtx(context.Background(), be, s, 0.16, 8, core.WithCoalesce()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionMultiGPU measures the §3.2 multi-device extension: the
// advanced division striped over 1 vs 2 dies of HPU1 (footnote 5).
func BenchmarkExtensionMultiGPU(b *testing.B) {
	in := workload.Uniform(1<<benchLogN, 6)
	for _, devices := range []int{1, 2} {
		b.Run(map[int]string{1: "1-die", 2: "2-dies"}[devices], func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				be, err := hpu.NewMultiSim(hpu.HPU1(), devices)
				if err != nil {
					b.Fatal(err)
				}
				s, _ := mergesort.New(in)
				rep, err := core.RunMultiGPUCtx(context.Background(), be, s,
					0.17, 9, core.WithCoalesce())
				if err != nil {
					b.Fatal(err)
				}
				secs = rep.Seconds
			}
			b.ReportMetric(secs*1e3, "virtual-ms")
		})
	}
}

// BenchmarkExtensionAnySorter measures the footnote-4 arbitrary-length
// sorter against the power-of-two implementation on comparable inputs.
func BenchmarkExtensionAnySorter(b *testing.B) {
	n := (1 << benchLogN) - 12345 // decidedly not a power of two
	in := workload.Uniform(n, 7)
	var secs float64
	for i := 0; i < b.N; i++ {
		be := hpu.MustSim(hpu.HPU1())
		s, err := mergesort.NewAny(in)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.RunAdvancedHybridCtx(context.Background(), be, s, 0.17, 9)
		if err != nil {
			b.Fatal(err)
		}
		if !workload.IsSorted(s.Result()) {
			b.Fatal("unsorted")
		}
		secs = rep.Seconds
	}
	b.ReportMetric(secs*1e3, "virtual-ms")
}

// BenchmarkExtensionExtendedModel measures the §7 refined model's full
// (α, y) search, the planning cost a user pays per instance.
func BenchmarkExtensionExtendedModel(b *testing.B) {
	num, err := model.NewNumeric(2, 2, 24,
		func(s float64) float64 { return 2 * s }, 0,
		model.Machine{P: 4, G: 4096, Gamma: 1.0 / 160})
	if err != nil {
		b.Fatal(err)
	}
	pl := hpu.HPU1()
	ext, err := model.NewExtended(num, model.ExtendedParams{
		CoreRate: pl.CPU.RateOpsPerSec, MemBW: pl.CPU.MemBWOpsPerSec,
		LLCBytes: pl.CPU.LLCBytes, BytesPerSize: 8, TransferBytesPerSize: 4,
		HideFactor: pl.GPU.HideFactor, Divergent: true,
		LaunchSec: pl.GPU.LaunchOverheadSec, DispatchSec: pl.CPU.DispatchOverheadSec,
		LinkLatencySec: pl.Link.LatencySec, LinkSecPerByte: pl.Link.SecPerByte,
	})
	if err != nil {
		b.Fatal(err)
	}
	var alpha float64
	for i := 0; i < b.N; i++ {
		alpha, _, _ = ext.BestAdvancedSeconds(60)
	}
	b.ReportMetric(alpha, "alpha")
}

// coalesceOpts returns the coalescing option when on, for benchmarks that
// toggle it.
func coalesceOpts(on bool) []core.Option {
	if on {
		return []core.Option{core.WithCoalesce()}
	}
	return nil
}
