package hybriddc

// Remote serving facade: the HTTP/JSON job API (internal/api) and its typed
// Go client (internal/api/client), re-exported so callers stand up a remote
// serving stack — or talk to one — without importing internal packages.
// DESIGN.md §14 documents the wire protocol.

import (
	"repro/internal/api"
	"repro/internal/api/client"
)

// APIServer is the HTTP/JSON front-end over a Server (serving pool). Build
// one with NewAPIServer, serve it with APIServer.Serve, and stop it with
// APIServer.Shutdown — which refuses new submissions (503 + Retry-After),
// drains every admitted job, and only then closes the listener.
type APIServer = api.Server

// APIServerOption configures an APIServer.
type APIServerOption = api.Option

// NewAPIServer builds the HTTP front-end over a serving pool. The pool is
// borrowed: APIServer.Shutdown drains the API's jobs, but closing the pool
// (and its backends) stays with the caller.
func NewAPIServer(srv *Server, opts ...APIServerOption) (*APIServer, error) {
	return api.New(srv, opts...)
}

// APIServer options. Share the metrics registry and trace recorder with the
// pool (WithServerMetrics / WithServerRecorder) so one /metrics scrape and
// one /events stream see the whole stack.
var (
	WithAPIMetrics      = api.WithMetrics
	WithAPIRecorder     = api.WithRecorder
	WithAPIMaxBodyBytes = api.WithMaxBodyBytes
	WithAPIMaxConns     = api.WithMaxConns
	WithAPIRetainJobs   = api.WithRetainJobs
	WithAPIEventPoll    = api.WithEventPoll
)

// Wire types shared by the API server and client.
type (
	// APIJobRequest is the POST /v1/jobs payload.
	APIJobRequest = api.JobRequest
	// APIJobStatus is the GET /v1/jobs/{id} response.
	APIJobStatus = api.JobStatus
	// APIJobResult is the GET /v1/jobs/{id}/result response.
	APIJobResult = api.JobResult
	// APIReliability is the wire form of the per-job reliability policy.
	APIReliability = api.Reliability
	// APIEvent is one /events SSE payload ("status", "span" or "done").
	APIEvent = api.Event
	// APIErrorBody is the JSON body of every non-2xx API response.
	APIErrorBody = api.ErrorBody
)

// RequestTimeoutHeader is the HTTP header carrying a caller's deadline; on
// submit it bounds the job's execution, on result reads it bounds the wait.
const RequestTimeoutHeader = api.RequestTimeoutHeader

// APIClient is the typed client for a remote APIServer. Errors unwrap to the
// same sentinels in-process callers see (ErrQueueFull, ErrDegraded, ...), so
// errors.Is works identically against local and remote serving.
type APIClient = client.Client

// RemoteHandle tracks one remotely submitted job: Wait blocks for the
// result, Status polls, Stream follows per-level progress over SSE.
type RemoteHandle = client.Handle

// APIClientError is a non-2xx response: HTTP status, wire kind, Retry-After
// hint, unwrapping to the matching dcerr sentinel.
type APIClientError = client.Error

// NewAPIClient returns a client for the API server at base, e.g.
// "http://127.0.0.1:8080".
var NewAPIClient = client.New

// WithAPIHTTPClient substitutes the client's underlying http.Client
// (timeouts, transports, test doubles).
var WithAPIHTTPClient = client.WithHTTPClient

// WithAPIBinary switches the client's payload hot path to the raw
// little-endian wire format (application/x-hpu-int32le frames on submit,
// Accept-negotiated binary result frames), bit-identical to JSON at a
// fraction of the bytes and allocations.
var WithAPIBinary = client.WithBinary
